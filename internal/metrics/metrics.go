// Package metrics collects the per-server counters the paper instruments
// the GraphTrek engine with (§VII-A): for every backend server, how many
// vertex requests arrived, how many were eliminated as redundant by the
// traversal-affiliate cache, how many were combined by execution merging,
// and how many turned into real I/O visits against the storage system.
// The invariant the paper states — redundant + combined + real = received —
// is asserted by tests and checked by the benchmark harness.
package metrics

import (
	"runtime"
	"sort"
	"sync/atomic"
	"time"
)

// Server holds one backend server's counters. All methods are safe for
// concurrent use. The zero value is ready.
type Server struct {
	received   atomic.Int64
	redundant  atomic.Int64
	combined   atomic.Int64
	realIO     atomic.Int64
	msgsSent   atomic.Int64
	execs      atomic.Int64
	msgsFailed atomic.Int64
	reconnects atomic.Int64
	peerDowns  atomic.Int64

	// Shared-executor instrumentation.
	rejected    atomic.Int64
	queuePeak   atomic.Int64
	queueWaitNs atomic.Int64
	queueGroups atomic.Int64

	// Seed-selection instrumentation. The read-cache counters have no
	// atomics here: the storage layer owns them and the server overlays
	// them into its snapshots.
	seedScanned   atomic.Int64
	seedIndexHits atomic.Int64

	// Replication / failover instrumentation.
	promotions   atomic.Int64
	epochRejects atomic.Int64
	replLag      atomic.Int64
	handoffBytes atomic.Int64
	rejoinNudges atomic.Int64
	feedRecords  atomic.Int64

	// Native latency histograms (log-linear buckets, see histogram.go).
	// These live outside Snapshot — Snapshot stays the flat counter copy
	// the Fields() reflection contract enumerates — and are exported
	// through Histograms() as real Prometheus histogram series.
	travelLatency Histogram
	queueWaitHist Histogram
	stepCompute   Histogram
	quorumWrite   Histogram
	feedLag       Histogram
}

// Snapshot is a point-in-time copy of the counters.
type Snapshot struct {
	// Received counts vertex requests (frontier entries) accepted.
	Received int64
	// Redundant counts requests dropped by the traversal-affiliate cache.
	Redundant int64
	// Combined counts requests served by an execution-merged disk access
	// (every request in a merged group beyond the first).
	Combined int64
	// RealIO counts actual vertex accesses against the storage system.
	RealIO int64
	// MsgsSent counts engine messages sent to peers.
	MsgsSent int64
	// Execs counts traversal executions processed.
	Execs int64
	// MsgsFailed counts engine messages the transport failed to deliver
	// (dead link, backpressure). A nonzero value makes a dead peer
	// observable instead of silently stranding the traversal.
	MsgsFailed int64
	// Reconnects counts transport-level re-dials after a lost peer
	// connection.
	Reconnects int64
	// PeerDownEvents counts failure-detector suspicion events: a backend
	// transitioned from alive to suspected-dead (locally detected or
	// learned via a PeerDown broadcast).
	PeerDownEvents int64
	// Rejected counts request batches refused by the shared executor's
	// admission control (queue depth limit).
	Rejected int64
	// QueueDepthPeak is the high-water mark of the shared executor's queue
	// depth (items buffered across all traversals). A gauge, not a counter:
	// Add takes the max of the operands and Sub keeps the receiver's value.
	QueueDepthPeak int64
	// QueueWaitNs accumulates the enqueue→pop wait of every scheduler group
	// a worker served; QueueGroups counts those groups, so the mean wait is
	// QueueWaitNs / QueueGroups.
	QueueWaitNs int64
	// QueueGroups counts scheduler groups popped by executor workers.
	QueueGroups int64
	// SeedScanned counts step-0 source candidates enumerated by seed
	// selection, on either path: the label population when seeding by
	// scan, or the index matches when a filter was pushed down. With an
	// index covering a selective seed this equals the match count instead
	// of the label population — the benefit the readpath bench asserts.
	SeedScanned int64
	// SeedIndexHits counts seed candidates resolved via a property index
	// lookup instead of a label scan.
	SeedIndexHits int64
	// VtxCacheHits / VtxCacheMisses count decoded-vertex read-cache
	// outcomes in the storage layer (zero when no cache is configured).
	VtxCacheHits   int64
	VtxCacheMisses int64
	// AdjCacheHits / AdjCacheMisses count materialized-adjacency read-cache
	// outcomes in the storage layer.
	AdjCacheHits   int64
	AdjCacheMisses int64
	// SpansDropped counts execution spans the trace ring evicted to admit
	// newer ones. The trace layer owns the counter (the server overlays it
	// into snapshots, like the cache counters); a nonzero value tells the
	// DAG assembler that missing parent spans may be wrapped-ring
	// artifacts rather than causality bugs.
	SpansDropped int64
	// Promotions counts follower→primary promotions this server performed
	// on itself (epoch-fenced failover takeovers).
	Promotions int64
	// EpochRejects counts replication or write messages rejected because
	// they carried a stale epoch — each one is a fenced stale primary.
	EpochRejects int64
	// ReplLagBytes is the primary's shipped-minus-acked replication byte
	// lag summed over its partitions and followers. A gauge: Sub keeps the
	// receiver's (later) value, Add sums across servers.
	ReplLagBytes int64
	// HandoffBytes counts snapshot bytes streamed for shard handoff /
	// follower catch-up.
	HandoffBytes int64
	// RejoinNudges counts invitations a primary sent to a recovered peer to
	// rejoin replica sets it was evicted from while suspected. A growing
	// value without matching epoch bumps flags partitions stuck below the
	// configured replication factor.
	RejoinNudges int64
	// FeedRecords counts committed change-feed records shipped to
	// subscribers (each record is one quorum-acknowledged mutation batch;
	// a record delivered to two subscribers counts twice).
	FeedRecords int64

	// Go runtime GC overlay (from runtime.ReadMemStats at snapshot time;
	// the runtime owns them like the storage layer owns the cache
	// counters). Process-level: in-process simulated clusters report the
	// same values on every server, so Add takes the max instead of an
	// N-fold overcount.

	// HeapAllocBytes is the live heap at snapshot time. A gauge.
	HeapAllocBytes int64
	// NumGC counts completed GC cycles since process start.
	NumGC int64
	// GCPauseTotalNs accumulates stop-the-world pause time since process
	// start.
	GCPauseTotalNs int64
	// GCPauseP95Ns is the 95th-percentile pause over the runtime's recent
	// pause ring (up to the last 256 cycles). A gauge.
	GCPauseP95Ns int64
}

// AddReceived records n accepted vertex requests.
func (s *Server) AddReceived(n int) { s.received.Add(int64(n)) }

// AddRedundant records n cache-eliminated requests.
func (s *Server) AddRedundant(n int) { s.redundant.Add(int64(n)) }

// AddCombined records n merge-eliminated requests.
func (s *Server) AddCombined(n int) { s.combined.Add(int64(n)) }

// AddRealIO records n real storage accesses.
func (s *Server) AddRealIO(n int) { s.realIO.Add(int64(n)) }

// AddMsgsSent records n outbound messages.
func (s *Server) AddMsgsSent(n int) { s.msgsSent.Add(int64(n)) }

// AddExecs records n processed executions.
func (s *Server) AddExecs(n int) { s.execs.Add(int64(n)) }

// AddMsgsFailed records n undeliverable outbound messages.
func (s *Server) AddMsgsFailed(n int) { s.msgsFailed.Add(int64(n)) }

// AddReconnects records n transport re-dials.
func (s *Server) AddReconnects(n int) { s.reconnects.Add(int64(n)) }

// AddPeerDownEvents records n failure-detector suspicion events.
func (s *Server) AddPeerDownEvents(n int) { s.peerDowns.Add(int64(n)) }

// AddRejected records n admission-control rejections.
func (s *Server) AddRejected(n int) { s.rejected.Add(int64(n)) }

// ObserveQueueDepth raises the executor queue-depth high-water mark.
func (s *Server) ObserveQueueDepth(depth int64) {
	for {
		cur := s.queuePeak.Load()
		if depth <= cur || s.queuePeak.CompareAndSwap(cur, depth) {
			return
		}
	}
}

// AddSeedScanned records n step-0 source candidates enumerated.
func (s *Server) AddSeedScanned(n int) { s.seedScanned.Add(int64(n)) }

// AddSeedIndexHits records n seed candidates resolved via a property index.
func (s *Server) AddSeedIndexHits(n int) { s.seedIndexHits.Add(int64(n)) }

// AddPromotions records n follower→primary promotions of this server.
func (s *Server) AddPromotions(n int) { s.promotions.Add(int64(n)) }

// AddEpochRejects records n stale-epoch rejections.
func (s *Server) AddEpochRejects(n int) { s.epochRejects.Add(int64(n)) }

// SetReplLagBytes publishes the current replication byte lag.
func (s *Server) SetReplLagBytes(n int64) { s.replLag.Store(n) }

// AddHandoffBytes records n snapshot bytes streamed for handoff.
func (s *Server) AddHandoffBytes(n int64) { s.handoffBytes.Add(n) }

// AddRejoinNudges records n rejoin invitations sent to a recovered peer.
func (s *Server) AddRejoinNudges(n int64) { s.rejoinNudges.Add(n) }

// AddFeedRecords records n change-feed records shipped to subscribers.
func (s *Server) AddFeedRecords(n int64) { s.feedRecords.Add(n) }

// AddQueueWait records one popped scheduler group's enqueue→pop wait,
// both in the legacy cumulative counters and the queue-wait histogram —
// so the histogram's _count stays pinned to queue_groups_total.
func (s *Server) AddQueueWait(d time.Duration) {
	s.queueWaitNs.Add(int64(d))
	s.queueGroups.Add(1)
	s.queueWaitHist.Record(int64(d))
}

// ObserveTravelLatency records one coordinated traversal's end-to-end
// latency (ledger creation to quiescence) at the coordinator.
func (s *Server) ObserveTravelLatency(d time.Duration) { s.travelLatency.Record(int64(d)) }

// ObserveStepCompute records the executor compute time of one popped
// scheduler group (pop to completion, disk included).
func (s *Server) ObserveStepCompute(d time.Duration) { s.stepCompute.Record(int64(d)) }

// ObserveQuorumWrite records one quorum write's accept-to-acknowledge
// latency at the partition primary.
func (s *Server) ObserveQuorumWrite(d time.Duration) { s.quorumWrite.Record(int64(d)) }

// ObserveFeedLag records one shipped change-feed record's delivery lag:
// the age of the committed record (commit-watermark age) when it left the
// primary for a subscriber.
func (s *Server) ObserveFeedLag(d time.Duration) { s.feedLag.Record(int64(d)) }

// HistogramSnapshot pairs one histogram's exposition identity with its
// snapshot. Base names carry no unit suffix conversion: samples are
// nanoseconds, and the exposition layer renders seconds.
type HistogramSnapshot struct {
	// Name is the Prometheus base name (the exposition appends
	// _bucket/_sum/_count).
	Name string
	// Help is the one-line exposition comment.
	Help string
	// Hist is the folded snapshot.
	Hist HistSnapshot
}

// Histograms snapshots every native histogram in stable order. The
// observability endpoint renders these as Prometheus histogram series,
// parallel to how Fields() drives the counter exposition.
func (s *Server) Histograms() []HistogramSnapshot {
	return []HistogramSnapshot{
		{"travel_latency_seconds", "End-to-end coordinated traversal latency (ledger creation to quiescence).", s.travelLatency.Snapshot()},
		{"queue_wait_seconds", "Enqueue-to-pop wait of scheduler groups served by executor workers.", s.queueWaitHist.Snapshot()},
		{"step_compute_seconds", "Executor compute time per popped scheduler group (disk included).", s.stepCompute.Snapshot()},
		{"quorum_write_seconds", "Quorum write accept-to-acknowledge latency at the partition primary.", s.quorumWrite.Snapshot()},
		{"feed_lag_seconds", "Committed change-feed record age at delivery to a subscriber.", s.feedLag.Snapshot()},
	}
}

// Snapshot returns a copy of the current counters.
func (s *Server) Snapshot() Snapshot {
	return Snapshot{
		Received:       s.received.Load(),
		Redundant:      s.redundant.Load(),
		Combined:       s.combined.Load(),
		RealIO:         s.realIO.Load(),
		MsgsSent:       s.msgsSent.Load(),
		Execs:          s.execs.Load(),
		MsgsFailed:     s.msgsFailed.Load(),
		Reconnects:     s.reconnects.Load(),
		PeerDownEvents: s.peerDowns.Load(),
		Rejected:       s.rejected.Load(),
		QueueDepthPeak: s.queuePeak.Load(),
		QueueWaitNs:    s.queueWaitNs.Load(),
		QueueGroups:    s.queueGroups.Load(),
		SeedScanned:    s.seedScanned.Load(),
		SeedIndexHits:  s.seedIndexHits.Load(),
		Promotions:     s.promotions.Load(),
		EpochRejects:   s.epochRejects.Load(),
		ReplLagBytes:   s.replLag.Load(),
		HandoffBytes:   s.handoffBytes.Load(),
		RejoinNudges:   s.rejoinNudges.Load(),
		FeedRecords:    s.feedRecords.Load(),
	}
}

// Sub returns the counter deltas from an earlier snapshot — how the
// benchmark harness isolates one traversal's statistics. QueueDepthPeak is
// a gauge and keeps the receiver's (later) value.
func (a Snapshot) Sub(b Snapshot) Snapshot {
	return Snapshot{
		Received:       a.Received - b.Received,
		Redundant:      a.Redundant - b.Redundant,
		Combined:       a.Combined - b.Combined,
		RealIO:         a.RealIO - b.RealIO,
		MsgsSent:       a.MsgsSent - b.MsgsSent,
		Execs:          a.Execs - b.Execs,
		MsgsFailed:     a.MsgsFailed - b.MsgsFailed,
		Reconnects:     a.Reconnects - b.Reconnects,
		PeerDownEvents: a.PeerDownEvents - b.PeerDownEvents,
		Rejected:       a.Rejected - b.Rejected,
		QueueDepthPeak: a.QueueDepthPeak,
		QueueWaitNs:    a.QueueWaitNs - b.QueueWaitNs,
		QueueGroups:    a.QueueGroups - b.QueueGroups,
		SeedScanned:    a.SeedScanned - b.SeedScanned,
		SeedIndexHits:  a.SeedIndexHits - b.SeedIndexHits,
		VtxCacheHits:   a.VtxCacheHits - b.VtxCacheHits,
		VtxCacheMisses: a.VtxCacheMisses - b.VtxCacheMisses,
		AdjCacheHits:   a.AdjCacheHits - b.AdjCacheHits,
		AdjCacheMisses: a.AdjCacheMisses - b.AdjCacheMisses,
		SpansDropped:   a.SpansDropped - b.SpansDropped,
		Promotions:     a.Promotions - b.Promotions,
		EpochRejects:   a.EpochRejects - b.EpochRejects,
		ReplLagBytes:   a.ReplLagBytes,
		HandoffBytes:   a.HandoffBytes - b.HandoffBytes,
		RejoinNudges:   a.RejoinNudges - b.RejoinNudges,
		FeedRecords:    a.FeedRecords - b.FeedRecords,
		// Runtime overlay: gauges keep the later value, cycle/pause counters
		// difference to the interval's GC activity.
		HeapAllocBytes: a.HeapAllocBytes,
		NumGC:          a.NumGC - b.NumGC,
		GCPauseTotalNs: a.GCPauseTotalNs - b.GCPauseTotalNs,
		GCPauseP95Ns:   a.GCPauseP95Ns,
	}
}

// Add returns the field-wise sum of two snapshots. QueueDepthPeak is a
// gauge and takes the max — summing per-server peaks would overstate any
// single server's backlog.
func (a Snapshot) Add(b Snapshot) Snapshot {
	return Snapshot{
		Received:       a.Received + b.Received,
		Redundant:      a.Redundant + b.Redundant,
		Combined:       a.Combined + b.Combined,
		RealIO:         a.RealIO + b.RealIO,
		MsgsSent:       a.MsgsSent + b.MsgsSent,
		Execs:          a.Execs + b.Execs,
		MsgsFailed:     a.MsgsFailed + b.MsgsFailed,
		Reconnects:     a.Reconnects + b.Reconnects,
		PeerDownEvents: a.PeerDownEvents + b.PeerDownEvents,
		Rejected:       a.Rejected + b.Rejected,
		QueueDepthPeak: max(a.QueueDepthPeak, b.QueueDepthPeak),
		QueueWaitNs:    a.QueueWaitNs + b.QueueWaitNs,
		QueueGroups:    a.QueueGroups + b.QueueGroups,
		SeedScanned:    a.SeedScanned + b.SeedScanned,
		SeedIndexHits:  a.SeedIndexHits + b.SeedIndexHits,
		VtxCacheHits:   a.VtxCacheHits + b.VtxCacheHits,
		VtxCacheMisses: a.VtxCacheMisses + b.VtxCacheMisses,
		AdjCacheHits:   a.AdjCacheHits + b.AdjCacheHits,
		AdjCacheMisses: a.AdjCacheMisses + b.AdjCacheMisses,
		SpansDropped:   a.SpansDropped + b.SpansDropped,
		Promotions:     a.Promotions + b.Promotions,
		EpochRejects:   a.EpochRejects + b.EpochRejects,
		// Per-server lags sum to the cluster's total outstanding bytes.
		ReplLagBytes: a.ReplLagBytes + b.ReplLagBytes,
		HandoffBytes: a.HandoffBytes + b.HandoffBytes,
		RejoinNudges: a.RejoinNudges + b.RejoinNudges,
		FeedRecords:  a.FeedRecords + b.FeedRecords,
		// Process-level runtime stats: in-process clusters share one runtime,
		// so max (not sum) keeps the aggregate honest.
		HeapAllocBytes: max(a.HeapAllocBytes, b.HeapAllocBytes),
		NumGC:          max(a.NumGC, b.NumGC),
		GCPauseTotalNs: max(a.GCPauseTotalNs, b.GCPauseTotalNs),
		GCPauseP95Ns:   max(a.GCPauseP95Ns, b.GCPauseP95Ns),
	}
}

// Consistent reports whether redundant + combined + real == received, the
// accounting identity of §VII-A.
func (a Snapshot) Consistent() bool {
	return a.Redundant+a.Combined+a.RealIO == a.Received
}

// Field is one exported counter in the canonical enumeration.
type Field struct {
	// Name is the Prometheus-style metric name (snake_case, no prefix).
	Name string
	// Help is the one-line exposition comment.
	Help string
	// Gauge marks point-in-time values; everything else is a monotonic
	// counter.
	Gauge bool
	// Process marks process-wide facts (the Go runtime's GC statistics):
	// every server in one process reports the same value, so the
	// exposition emits them once, unlabeled, instead of per-server series
	// that a PromQL sum() would multiply by the server count.
	Process bool
	// Get reads the field from a snapshot.
	Get func(Snapshot) int64
}

// Fields enumerates every Snapshot field in declaration order, with
// exposition names and help strings. The observability endpoint renders
// /metrics from this list, so a counter added to Snapshot must be added
// here too — a reflection test enforces the correspondence, which keeps
// future counters from silently missing the exposition.
func Fields() []Field {
	return []Field{
		{"received_total", "Vertex requests (frontier entries) accepted.", false, false, func(s Snapshot) int64 { return s.Received }},
		{"redundant_total", "Requests dropped by the traversal-affiliate cache.", false, false, func(s Snapshot) int64 { return s.Redundant }},
		{"combined_total", "Requests served by an execution-merged disk access.", false, false, func(s Snapshot) int64 { return s.Combined }},
		{"real_io_total", "Actual vertex accesses against the storage system.", false, false, func(s Snapshot) int64 { return s.RealIO }},
		{"msgs_sent_total", "Engine messages sent to peers.", false, false, func(s Snapshot) int64 { return s.MsgsSent }},
		{"execs_total", "Traversal executions processed.", false, false, func(s Snapshot) int64 { return s.Execs }},
		{"msgs_failed_total", "Engine messages the transport failed to deliver.", false, false, func(s Snapshot) int64 { return s.MsgsFailed }},
		{"reconnects_total", "Transport-level re-dials after a lost peer connection.", false, false, func(s Snapshot) int64 { return s.Reconnects }},
		{"peer_down_events_total", "Failure-detector suspicion events.", false, false, func(s Snapshot) int64 { return s.PeerDownEvents }},
		{"rejected_total", "Request batches refused by executor admission control.", false, false, func(s Snapshot) int64 { return s.Rejected }},
		{"queue_depth_peak", "High-water mark of the shared executor queue depth.", true, false, func(s Snapshot) int64 { return s.QueueDepthPeak }},
		{"queue_wait_ns_total", "Cumulative enqueue-to-pop wait of served scheduler groups.", false, false, func(s Snapshot) int64 { return s.QueueWaitNs }},
		{"queue_groups_total", "Scheduler groups popped by executor workers.", false, false, func(s Snapshot) int64 { return s.QueueGroups }},
		{"seed_scanned_total", "Step-0 source candidates enumerated by seed selection.", false, false, func(s Snapshot) int64 { return s.SeedScanned }},
		{"seed_index_hits_total", "Seed candidates resolved via a property index lookup.", false, false, func(s Snapshot) int64 { return s.SeedIndexHits }},
		{"vtx_cache_hits_total", "Decoded-vertex read-cache hits in the storage layer.", false, false, func(s Snapshot) int64 { return s.VtxCacheHits }},
		{"vtx_cache_misses_total", "Decoded-vertex read-cache misses in the storage layer.", false, false, func(s Snapshot) int64 { return s.VtxCacheMisses }},
		{"adj_cache_hits_total", "Materialized-adjacency read-cache hits in the storage layer.", false, false, func(s Snapshot) int64 { return s.AdjCacheHits }},
		{"adj_cache_misses_total", "Materialized-adjacency read-cache misses in the storage layer.", false, false, func(s Snapshot) int64 { return s.AdjCacheMisses }},
		{"trace_spans_dropped_total", "Execution spans evicted from the trace ring to admit newer ones.", false, false, func(s Snapshot) int64 { return s.SpansDropped }},
		{"promotions_total", "Follower-to-primary promotions performed by this server.", false, false, func(s Snapshot) int64 { return s.Promotions }},
		{"epoch_rejects_total", "Replication or write messages rejected for a stale epoch.", false, false, func(s Snapshot) int64 { return s.EpochRejects }},
		{"repl_lag_bytes", "Shipped-minus-acked replication byte lag across partitions.", true, false, func(s Snapshot) int64 { return s.ReplLagBytes }},
		{"handoff_bytes_total", "Snapshot bytes streamed for shard handoff and catch-up.", false, false, func(s Snapshot) int64 { return s.HandoffBytes }},
		{"rejoin_nudges_total", "Rejoin invitations sent to recovered peers for under-replicated partitions.", false, false, func(s Snapshot) int64 { return s.RejoinNudges }},
		{"feed_records_total", "Committed change-feed records shipped to subscribers.", false, false, func(s Snapshot) int64 { return s.FeedRecords }},
		{"heap_alloc_bytes", "Live heap bytes at snapshot time (runtime.MemStats.HeapAlloc).", true, true, func(s Snapshot) int64 { return s.HeapAllocBytes }},
		{"gc_cycles_total", "Completed GC cycles since process start.", false, true, func(s Snapshot) int64 { return s.NumGC }},
		{"gc_pause_ns_total", "Cumulative stop-the-world GC pause time.", false, true, func(s Snapshot) int64 { return s.GCPauseTotalNs }},
		{"gc_pause_p95_ns", "95th-percentile GC pause over the runtime's recent pause ring.", true, true, func(s Snapshot) int64 { return s.GCPauseP95Ns }},
	}
}

// ReadRuntime overlays the Go runtime's GC statistics onto a snapshot —
// the runtime owns these the way the storage layer owns the cache
// counters.
func ReadRuntime(s *Snapshot) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.HeapAllocBytes = int64(ms.HeapAlloc)
	s.NumGC = int64(ms.NumGC)
	s.GCPauseTotalNs = int64(ms.PauseTotalNs)
	s.GCPauseP95Ns = pauseP95(&ms)
}

// pauseP95 computes the 95th-percentile pause from the runtime's circular
// pause buffer (up to the last 256 completed cycles).
func pauseP95(ms *runtime.MemStats) int64 {
	n := int(ms.NumGC)
	if n == 0 {
		return 0
	}
	if n > len(ms.PauseNs) {
		n = len(ms.PauseNs)
	}
	pauses := make([]uint64, n)
	copy(pauses, ms.PauseNs[:n])
	sort.Slice(pauses, func(i, j int) bool { return pauses[i] < pauses[j] })
	// Nearest-rank p95: the smallest pause >= 95% of the observed ones.
	idx := (n*95 + 99) / 100
	if idx > 0 {
		idx--
	}
	return int64(pauses[idx])
}
