// Package metrics collects the per-server counters the paper instruments
// the GraphTrek engine with (§VII-A): for every backend server, how many
// vertex requests arrived, how many were eliminated as redundant by the
// traversal-affiliate cache, how many were combined by execution merging,
// and how many turned into real I/O visits against the storage system.
// The invariant the paper states — redundant + combined + real = received —
// is asserted by tests and checked by the benchmark harness.
package metrics

import "sync/atomic"

// Server holds one backend server's counters. All methods are safe for
// concurrent use. The zero value is ready.
type Server struct {
	received   atomic.Int64
	redundant  atomic.Int64
	combined   atomic.Int64
	realIO     atomic.Int64
	msgsSent   atomic.Int64
	execs      atomic.Int64
	msgsFailed atomic.Int64
	reconnects atomic.Int64
	peerDowns  atomic.Int64
}

// Snapshot is a point-in-time copy of the counters.
type Snapshot struct {
	// Received counts vertex requests (frontier entries) accepted.
	Received int64
	// Redundant counts requests dropped by the traversal-affiliate cache.
	Redundant int64
	// Combined counts requests served by an execution-merged disk access
	// (every request in a merged group beyond the first).
	Combined int64
	// RealIO counts actual vertex accesses against the storage system.
	RealIO int64
	// MsgsSent counts engine messages sent to peers.
	MsgsSent int64
	// Execs counts traversal executions processed.
	Execs int64
	// MsgsFailed counts engine messages the transport failed to deliver
	// (dead link, backpressure). A nonzero value makes a dead peer
	// observable instead of silently stranding the traversal.
	MsgsFailed int64
	// Reconnects counts transport-level re-dials after a lost peer
	// connection.
	Reconnects int64
	// PeerDownEvents counts failure-detector suspicion events: a backend
	// transitioned from alive to suspected-dead (locally detected or
	// learned via a PeerDown broadcast).
	PeerDownEvents int64
}

// AddReceived records n accepted vertex requests.
func (s *Server) AddReceived(n int) { s.received.Add(int64(n)) }

// AddRedundant records n cache-eliminated requests.
func (s *Server) AddRedundant(n int) { s.redundant.Add(int64(n)) }

// AddCombined records n merge-eliminated requests.
func (s *Server) AddCombined(n int) { s.combined.Add(int64(n)) }

// AddRealIO records n real storage accesses.
func (s *Server) AddRealIO(n int) { s.realIO.Add(int64(n)) }

// AddMsgsSent records n outbound messages.
func (s *Server) AddMsgsSent(n int) { s.msgsSent.Add(int64(n)) }

// AddExecs records n processed executions.
func (s *Server) AddExecs(n int) { s.execs.Add(int64(n)) }

// AddMsgsFailed records n undeliverable outbound messages.
func (s *Server) AddMsgsFailed(n int) { s.msgsFailed.Add(int64(n)) }

// AddReconnects records n transport re-dials.
func (s *Server) AddReconnects(n int) { s.reconnects.Add(int64(n)) }

// AddPeerDownEvents records n failure-detector suspicion events.
func (s *Server) AddPeerDownEvents(n int) { s.peerDowns.Add(int64(n)) }

// Snapshot returns a copy of the current counters.
func (s *Server) Snapshot() Snapshot {
	return Snapshot{
		Received:       s.received.Load(),
		Redundant:      s.redundant.Load(),
		Combined:       s.combined.Load(),
		RealIO:         s.realIO.Load(),
		MsgsSent:       s.msgsSent.Load(),
		Execs:          s.execs.Load(),
		MsgsFailed:     s.msgsFailed.Load(),
		Reconnects:     s.reconnects.Load(),
		PeerDownEvents: s.peerDowns.Load(),
	}
}

// Sub returns the counter deltas from an earlier snapshot — how the
// benchmark harness isolates one traversal's statistics.
func (a Snapshot) Sub(b Snapshot) Snapshot {
	return Snapshot{
		Received:       a.Received - b.Received,
		Redundant:      a.Redundant - b.Redundant,
		Combined:       a.Combined - b.Combined,
		RealIO:         a.RealIO - b.RealIO,
		MsgsSent:       a.MsgsSent - b.MsgsSent,
		Execs:          a.Execs - b.Execs,
		MsgsFailed:     a.MsgsFailed - b.MsgsFailed,
		Reconnects:     a.Reconnects - b.Reconnects,
		PeerDownEvents: a.PeerDownEvents - b.PeerDownEvents,
	}
}

// Add returns the field-wise sum of two snapshots.
func (a Snapshot) Add(b Snapshot) Snapshot {
	return Snapshot{
		Received:       a.Received + b.Received,
		Redundant:      a.Redundant + b.Redundant,
		Combined:       a.Combined + b.Combined,
		RealIO:         a.RealIO + b.RealIO,
		MsgsSent:       a.MsgsSent + b.MsgsSent,
		Execs:          a.Execs + b.Execs,
		MsgsFailed:     a.MsgsFailed + b.MsgsFailed,
		Reconnects:     a.Reconnects + b.Reconnects,
		PeerDownEvents: a.PeerDownEvents + b.PeerDownEvents,
	}
}

// Consistent reports whether redundant + combined + real == received, the
// accounting identity of §VII-A.
func (a Snapshot) Consistent() bool {
	return a.Redundant+a.Combined+a.RealIO == a.Received
}
