package metrics

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestHistogramBucketRoundTrip(t *testing.T) {
	// Every bucket's upper bound must land back in that bucket, and the
	// bound sequence must be strictly increasing until it saturates.
	prev := int64(-1)
	for i := 0; i < HistBuckets; i++ {
		up := BucketUpper(i)
		if up <= prev && up != math.MaxInt64 {
			t.Fatalf("bucket %d upper %d not increasing (prev %d)", i, up, prev)
		}
		prev = up
		if up == math.MaxInt64 {
			continue // saturated tail, unreachable from Record
		}
		if got := bucketIndex(up); got != i {
			t.Fatalf("BucketUpper(%d) = %d maps back to bucket %d", i, up, got)
		}
		if got := bucketIndex(up + 1); got != i+1 {
			t.Fatalf("upper+1 of bucket %d maps to %d, want %d", i, got, i+1)
		}
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 4, 100, 1000, -50} {
		h.Record(v)
	}
	s := h.Snapshot()
	if s.Count != 8 {
		t.Fatalf("Count = %d, want 8", s.Count)
	}
	if s.Sum != 0+1+2+3+4+100+1000 { // -50 clamps to 0 in the sum
		t.Fatalf("Sum = %d", s.Sum)
	}
	// The negative sample clamps into bucket 0 alongside the real zero.
	if s.Counts[0] != 2 {
		t.Fatalf("bucket 0 = %d, want 2 (zero + clamped negative)", s.Counts[0])
	}
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total != s.Count {
		t.Fatalf("bucket sum %d != Count %d", total, s.Count)
	}
}

func TestHistogramMergeAndCumulative(t *testing.T) {
	var a, b Histogram
	for i := int64(0); i < 100; i++ {
		a.Record(i)
		b.Record(i * 1000)
	}
	m := a.Snapshot().Merge(b.Snapshot())
	if m.Count != 200 {
		t.Fatalf("merged Count = %d, want 200", m.Count)
	}
	if m.Sum != a.Snapshot().Sum+b.Snapshot().Sum {
		t.Fatalf("merged Sum = %d", m.Sum)
	}
	// CumulativeLE at a ladder bound is exact: (1<<10)-1 = 1023 covers
	// all 100 of a's samples (0..99) and b's 0 and 1000 — 102 exactly.
	if got := m.CumulativeLE(DefaultLadderNs[0]); got != 102 {
		t.Fatalf("CumulativeLE(1023) = %d, want 102", got)
	}
	// Monotone over the ladder, ending at the full count.
	var prev uint64
	for _, bound := range DefaultLadderNs {
		c := m.CumulativeLE(bound)
		if c < prev {
			t.Fatalf("cumulative not monotone at le=%d: %d < %d", bound, c, prev)
		}
		prev = c
	}
	if prev != m.Count {
		t.Fatalf("cumulative at top ladder bound = %d, want full count %d", prev, m.Count)
	}
}

func TestHistogramLadderBoundsAreBucketEdges(t *testing.T) {
	// The exposition ladder must coincide with native bucket uppers; this
	// is what makes the served cumulative counts exact.
	for _, bound := range DefaultLadderNs {
		if got := BucketUpper(bucketIndex(bound)); got != bound {
			t.Fatalf("ladder bound %d is not a bucket upper (bucket tops at %d)", bound, got)
		}
	}
}

// quantileErr checks the histogram's q-quantile against the exact
// nearest-rank percentile of the sample set: the bucket design guarantees
// the reported value is >= the exact sample and within 25% relative error
// (plus the 1-count granularity of the sub-bucket floor).
func quantileErr(t *testing.T, name string, samples []int64) {
	t.Helper()
	var h Histogram
	for _, v := range samples {
		h.Record(v)
	}
	s := h.Snapshot()
	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		rank := int(q * float64(len(sorted)))
		if rank < 1 {
			rank = 1
		}
		exact := sorted[rank-1]
		got := s.Quantile(q)
		if got < exact {
			t.Errorf("%s q%.2f: histogram %d below exact %d", name, q, got, exact)
		}
		// Upper bound of exact's bucket overestimates by < 25% of the
		// value (one sub-bucket width), +1 for the integer floor.
		limit := exact + exact/4 + 1
		if got > limit {
			t.Errorf("%s q%.2f: histogram %d exceeds bound %d (exact %d)", name, q, got, limit, exact)
		}
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 20000

	uniform := make([]int64, n)
	for i := range uniform {
		uniform[i] = rng.Int63n(10_000_000) // 0..10ms
	}
	quantileErr(t, "uniform", uniform)

	bimodal := make([]int64, n)
	for i := range bimodal {
		if rng.Intn(10) == 0 {
			bimodal[i] = 50_000_000 + rng.Int63n(10_000_000) // slow mode ~50ms
		} else {
			bimodal[i] = 100_000 + rng.Int63n(100_000) // fast mode ~100µs
		}
	}
	quantileErr(t, "bimodal", bimodal)

	heavy := make([]int64, n)
	for i := range heavy {
		// Pareto-ish tail: x = scale / U^(1/alpha), alpha 1.5.
		u := rng.Float64()
		if u < 1e-9 {
			u = 1e-9
		}
		heavy[i] = int64(100_000 / math.Pow(u, 1/1.5))
	}
	quantileErr(t, "heavy-tail", heavy)
}

// TestStressHistogramConcurrent hammers concurrent Record/Snapshot/Merge
// under the race detector (picked up by `make stress` via the TestStress
// name convention). At the end — writers quiesced — the bucket sums,
// count and sum must account for every sample exactly.
func TestStressHistogramConcurrent(t *testing.T) {
	var h Histogram
	const writers, perWriter = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent snapshotters: results are unused, the race detector and
	// the torn-read tolerance documented on Snapshot are the test.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := h.Snapshot()
				_ = s.Merge(s).Quantile(0.99)
			}
		}()
	}
	var wrote sync.WaitGroup
	var wantSum int64
	var sumMu sync.Mutex
	for w := 0; w < writers; w++ {
		wrote.Add(1)
		go func(w int) {
			defer wrote.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var local int64
			for i := 0; i < perWriter; i++ {
				v := rng.Int63n(1 << 30)
				h.Record(v)
				local += v
			}
			sumMu.Lock()
			wantSum += local
			sumMu.Unlock()
		}(w)
	}
	wrote.Wait()
	close(stop)
	wg.Wait()
	s := h.Snapshot()
	if s.Count != writers*perWriter {
		t.Fatalf("Count = %d, want %d", s.Count, writers*perWriter)
	}
	if s.Sum != wantSum {
		t.Fatalf("Sum = %d, want %d", s.Sum, wantSum)
	}
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total != s.Count {
		t.Fatalf("bucket sum %d != Count %d", total, s.Count)
	}
}
