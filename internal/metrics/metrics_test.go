package metrics

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestCountersAndSnapshot(t *testing.T) {
	var s Server
	s.AddReceived(10)
	s.AddRedundant(3)
	s.AddCombined(2)
	s.AddRealIO(5)
	s.AddMsgsSent(7)
	s.AddExecs(4)
	snap := s.Snapshot()
	want := Snapshot{Received: 10, Redundant: 3, Combined: 2, RealIO: 5, MsgsSent: 7, Execs: 4}
	if snap != want {
		t.Errorf("snapshot = %+v, want %+v", snap, want)
	}
	if !snap.Consistent() {
		t.Error("3+2+5 == 10 should be consistent")
	}
}

func TestInconsistentSnapshot(t *testing.T) {
	s := Snapshot{Received: 10, Redundant: 1, Combined: 1, RealIO: 1}
	if s.Consistent() {
		t.Error("3 != 10 should be inconsistent")
	}
}

func TestSubAndAdd(t *testing.T) {
	a := Snapshot{Received: 10, Redundant: 4, Combined: 3, RealIO: 3, MsgsSent: 8, Execs: 2}
	b := Snapshot{Received: 6, Redundant: 2, Combined: 2, RealIO: 2, MsgsSent: 5, Execs: 1}
	diff := a.Sub(b)
	if diff != (Snapshot{Received: 4, Redundant: 2, Combined: 1, RealIO: 1, MsgsSent: 3, Execs: 1}) {
		t.Errorf("Sub = %+v", diff)
	}
	if got := diff.Add(b); got != a {
		t.Errorf("Add(Sub) = %+v, want %+v", got, a)
	}
}

func TestSubAddInverseQuick(t *testing.T) {
	f := func(a1, a2, a3, b1, b2, b3 int16) bool {
		a := Snapshot{Received: int64(a1), Redundant: int64(a2), RealIO: int64(a3)}
		b := Snapshot{Received: int64(b1), Combined: int64(b2), MsgsSent: int64(b3)}
		return a.Add(b).Sub(b) == a && a.Sub(b).Add(b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConcurrentAdds(t *testing.T) {
	var s Server
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				s.AddReceived(1)
				s.AddRealIO(1)
			}
		}()
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap.Received != 8000 || snap.RealIO != 8000 {
		t.Errorf("lost updates: %+v", snap)
	}
}
