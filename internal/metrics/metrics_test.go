package metrics

import (
	"reflect"
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func TestCountersAndSnapshot(t *testing.T) {
	var s Server
	s.AddReceived(10)
	s.AddRedundant(3)
	s.AddCombined(2)
	s.AddRealIO(5)
	s.AddMsgsSent(7)
	s.AddExecs(4)
	snap := s.Snapshot()
	want := Snapshot{Received: 10, Redundant: 3, Combined: 2, RealIO: 5, MsgsSent: 7, Execs: 4}
	if snap != want {
		t.Errorf("snapshot = %+v, want %+v", snap, want)
	}
	if !snap.Consistent() {
		t.Error("3+2+5 == 10 should be consistent")
	}
}

func TestInconsistentSnapshot(t *testing.T) {
	s := Snapshot{Received: 10, Redundant: 1, Combined: 1, RealIO: 1}
	if s.Consistent() {
		t.Error("3 != 10 should be inconsistent")
	}
}

func TestSubAndAdd(t *testing.T) {
	a := Snapshot{Received: 10, Redundant: 4, Combined: 3, RealIO: 3, MsgsSent: 8, Execs: 2}
	b := Snapshot{Received: 6, Redundant: 2, Combined: 2, RealIO: 2, MsgsSent: 5, Execs: 1}
	diff := a.Sub(b)
	if diff != (Snapshot{Received: 4, Redundant: 2, Combined: 1, RealIO: 1, MsgsSent: 3, Execs: 1}) {
		t.Errorf("Sub = %+v", diff)
	}
	if got := diff.Add(b); got != a {
		t.Errorf("Add(Sub) = %+v, want %+v", got, a)
	}
}

func TestSubAddInverseQuick(t *testing.T) {
	f := func(a1, a2, a3, b1, b2, b3 int16) bool {
		a := Snapshot{Received: int64(a1), Redundant: int64(a2), RealIO: int64(a3)}
		b := Snapshot{Received: int64(b1), Combined: int64(b2), MsgsSent: int64(b3)}
		return a.Add(b).Sub(b) == a && a.Sub(b).Add(b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExecutorMetrics(t *testing.T) {
	var s Server
	s.ObserveQueueDepth(5)
	s.ObserveQueueDepth(12)
	s.ObserveQueueDepth(3) // never lowers the peak
	s.AddQueueWait(100)
	s.AddQueueWait(300)
	s.AddRejected(2)
	snap := s.Snapshot()
	if snap.QueueDepthPeak != 12 {
		t.Errorf("QueueDepthPeak = %d, want 12", snap.QueueDepthPeak)
	}
	if snap.QueueWaitNs != 400 || snap.QueueGroups != 2 {
		t.Errorf("wait = %d/%d groups, want 400/2", snap.QueueWaitNs, snap.QueueGroups)
	}
	if snap.Rejected != 2 {
		t.Errorf("Rejected = %d, want 2", snap.Rejected)
	}
}

func TestQueueDepthPeakGaugeSemantics(t *testing.T) {
	a := Snapshot{QueueDepthPeak: 7, QueueWaitNs: 50, QueueGroups: 5}
	b := Snapshot{QueueDepthPeak: 9, QueueWaitNs: 20, QueueGroups: 2}
	if got := a.Add(b).QueueDepthPeak; got != 9 {
		t.Errorf("Add peak = %d, want max 9", got)
	}
	if got := a.Sub(b).QueueDepthPeak; got != 7 {
		t.Errorf("Sub peak = %d, want receiver's 7", got)
	}
	if d := a.Sub(b); d.QueueWaitNs != 30 || d.QueueGroups != 3 {
		t.Errorf("Sub wait = %+v", d)
	}
}

func TestConcurrentAdds(t *testing.T) {
	var s Server
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				s.AddReceived(1)
				s.AddRealIO(1)
			}
		}()
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap.Received != 8000 || snap.RealIO != 8000 {
		t.Errorf("lost updates: %+v", snap)
	}
}

// TestFieldsCoverSnapshot enforces the Fields()/Snapshot correspondence by
// reflection: every Snapshot field must appear exactly once in the
// enumeration, each getter must read its own field, and names must be
// unique. A counter added to Snapshot without a Fields() entry fails here
// instead of silently missing the /metrics exposition.
func TestFieldsCoverSnapshot(t *testing.T) {
	fields := Fields()
	typ := reflect.TypeOf(Snapshot{})
	if len(fields) != typ.NumField() {
		t.Fatalf("Fields() has %d entries, Snapshot has %d fields", len(fields), typ.NumField())
	}
	names := make(map[string]bool)
	for i, f := range fields {
		if f.Name == "" || f.Help == "" {
			t.Errorf("field %d: empty name or help: %+v", i, f)
		}
		if names[f.Name] {
			t.Errorf("duplicate field name %q", f.Name)
		}
		names[f.Name] = true
		// Probe getter i with a snapshot where only struct field i is set:
		// the getter must read exactly that field.
		var snap Snapshot
		reflect.ValueOf(&snap).Elem().Field(i).SetInt(int64(1000 + i))
		if got := f.Get(snap); got != int64(1000+i) {
			t.Errorf("field %q (index %d) getter read %d, want %d — enumeration order must match Snapshot declaration order", f.Name, i, got, 1000+i)
		}
	}
}

// TestReadRuntimeOverlay exercises the GC gauge overlay: after a forced GC
// cycle the runtime must report at least one completed cycle, a live heap,
// and a p95 pause bounded by the cumulative pause time.
func TestReadRuntimeOverlay(t *testing.T) {
	runtime.GC()
	var s Snapshot
	ReadRuntime(&s)
	if s.NumGC < 1 {
		t.Errorf("NumGC = %d after runtime.GC()", s.NumGC)
	}
	if s.HeapAllocBytes <= 0 {
		t.Errorf("HeapAllocBytes = %d", s.HeapAllocBytes)
	}
	if s.GCPauseP95Ns < 0 || s.GCPauseP95Ns > s.GCPauseTotalNs {
		t.Errorf("p95 pause %dns outside [0, total %dns]", s.GCPauseP95Ns, s.GCPauseTotalNs)
	}
}

// TestRuntimeGaugeSemantics pins the aggregation rules for the runtime
// overlay: heap and p95 are gauges (Sub keeps the later value, Add takes
// the max — in-process clusters share one runtime), cycle and pause
// counters difference and max like the lag gauge's documented hybrid.
func TestRuntimeGaugeSemantics(t *testing.T) {
	a := Snapshot{HeapAllocBytes: 100, NumGC: 10, GCPauseTotalNs: 500, GCPauseP95Ns: 40}
	b := Snapshot{HeapAllocBytes: 300, NumGC: 4, GCPauseTotalNs: 200, GCPauseP95Ns: 90}
	d := a.Sub(b)
	if d.HeapAllocBytes != 100 || d.GCPauseP95Ns != 40 {
		t.Errorf("Sub gauges = %d/%d, want receiver's 100/40", d.HeapAllocBytes, d.GCPauseP95Ns)
	}
	if d.NumGC != 6 || d.GCPauseTotalNs != 300 {
		t.Errorf("Sub counters = %d/%d, want 6/300", d.NumGC, d.GCPauseTotalNs)
	}
	sum := a.Add(b)
	if sum.HeapAllocBytes != 300 || sum.NumGC != 10 || sum.GCPauseTotalNs != 500 || sum.GCPauseP95Ns != 90 {
		t.Errorf("Add = %+v, want field-wise max for runtime stats", sum)
	}
}
