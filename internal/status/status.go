// Package status defines the JSON document one backend server publishes
// about its live replication and engine state: per-partition epoch, role,
// replica set and sequence watermarks, plus executor queue and read-cache
// gauges. It is pure data — core fills it in, internal/obs serves it at
// /status, wire.KindStatusReq pulls it cluster-wide, and `gtq -status`
// renders the merged table. Keeping the types here (not in core) lets the
// HTTP layer and the CLI share them without importing the engine.
package status

// Partition is one partition's replication state as seen by the
// reporting server. Sequence numbers are meaningful within Epoch only.
type Partition struct {
	// Part is the partition id.
	Part int `json:"part"`
	// Epoch is the fencing epoch of the reporter's role.
	Epoch uint64 `json:"epoch"`
	// Primary is the partition's primary server in the reporter's route
	// view.
	Primary int `json:"primary"`
	// Followers lists the follower replicas in the reporter's route view.
	Followers []int `json:"followers,omitempty"`
	// Role is the reporter's own role: "primary" or "follower".
	Role string `json:"role"`
	// AppliedSeq is the last mutation batch applied to the local store.
	AppliedSeq uint64 `json:"applied_seq"`
	// AckedSeq is the highest sequence every follower has acknowledged
	// (primary only; the quorum floor).
	AckedSeq uint64 `json:"acked_seq"`
	// CommitSeq is the quorum commit watermark feeding the change feed.
	CommitSeq uint64 `json:"commit_seq"`
	// LagEntries counts applied-but-uncommitted entries (applied_seq -
	// commit_seq on the reporter).
	LagEntries uint64 `json:"lag_entries"`
	// LagBytes is the primary's shipped-minus-acked byte lag over its
	// followers for this partition.
	LagBytes int64 `json:"lag_bytes"`
	// LagAgeNs is the age of the oldest uncommitted entry, nanoseconds
	// (0 when fully committed).
	LagAgeNs int64 `json:"lag_age_ns"`
	// Joining marks a snapshot replay in flight on the reporter (it is
	// receiving this partition via shard handoff).
	Joining bool `json:"joining,omitempty"`
	// HandoffsInFlight counts snapshot streams this primary is currently
	// sending for the partition.
	HandoffsInFlight int `json:"handoffs_in_flight,omitempty"`
	// FeedSubscribers lists live change-feed subscriptions on this
	// primary (cursor = last shipped sequence).
	FeedSubscribers []FeedSubscriber `json:"feed_subscribers,omitempty"`
}

// FeedSubscriber is one live change-feed subscription on a primary.
type FeedSubscriber struct {
	// Peer is the subscriber's endpoint id.
	Peer int `json:"peer"`
	// Cursor is the last sequence shipped to the subscriber.
	Cursor uint64 `json:"cursor"`
}

// CacheStats mirrors the storage layer's read-cache counters.
type CacheStats struct {
	VtxHits   int64 `json:"vtx_hits"`
	VtxMisses int64 `json:"vtx_misses"`
	AdjHits   int64 `json:"adj_hits"`
	AdjMisses int64 `json:"adj_misses"`
}

// Server is one backend's full status document.
type Server struct {
	// Server is the reporting backend's node id.
	Server int `json:"server"`
	// QueueLen is the shared executor's current buffered item count.
	QueueLen int `json:"queue_len"`
	// QueueHighWater is the executor queue's depth high-water mark.
	QueueHighWater int `json:"queue_high_water"`
	// Cache is the read-cache counter overlay.
	Cache CacheStats `json:"cache"`
	// Partitions lists replication state for every partition the server
	// holds a role in, ascending by partition id. Empty on unreplicated
	// clusters.
	Partitions []Partition `json:"partitions,omitempty"`
	// Ready mirrors the /readyz verdict at snapshot time.
	Ready bool `json:"ready"`
	// NotReadyReasons explains a false Ready, one reason per condition.
	NotReadyReasons []string `json:"not_ready_reasons,omitempty"`
}

// Readiness is the /readyz JSON body.
type Readiness struct {
	// Ready is true when every owned partition can reach quorum and no
	// snapshot replay is in flight.
	Ready bool `json:"ready"`
	// Reasons lists what blocks readiness when Ready is false.
	Reasons []string `json:"reasons,omitempty"`
}
