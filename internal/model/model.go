// Package model defines the property-graph data model shared by every
// GraphTrek component: vertices and directed, labeled edges, each carrying a
// map of typed properties. It matches the metadata graph of the paper's
// Fig. 1 — users, executions and files as vertices; run/exe/read/write
// relationships as edges.
package model

import (
	"encoding/binary"
	"fmt"

	"graphtrek/internal/property"
)

// VertexID identifies a vertex globally across the cluster. IDs are dense
// unsigned integers assigned by the loader / generator; the partitioner
// maps them to owner servers.
type VertexID uint64

// String renders the id for logs and CLI output.
func (id VertexID) String() string { return fmt.Sprintf("v%d", uint64(id)) }

// Vertex is one entity in the metadata graph.
type Vertex struct {
	ID    VertexID
	Label string // entity type: "User", "Execution", "File", ...
	Props property.Map
}

// Edge is one directed, labeled relationship.
type Edge struct {
	Src   VertexID
	Dst   VertexID
	Label string // relationship type: "run", "read", "write", ...
	Props property.Map
}

// AppendVertexValue appends the storage encoding of a vertex's label and
// properties (the ID lives in the key) to b.
func AppendVertexValue(b []byte, v Vertex) []byte {
	b = binary.AppendUvarint(b, uint64(len(v.Label)))
	b = append(b, v.Label...)
	return property.AppendMap(b, v.Props)
}

// DecodeVertexValue decodes a vertex payload produced by AppendVertexValue.
func DecodeVertexValue(id VertexID, b []byte) (Vertex, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || uint64(len(b)-sz) < n {
		return Vertex{}, fmt.Errorf("model: truncated vertex label")
	}
	v := Vertex{ID: id, Label: string(b[sz : sz+int(n)])}
	props, rest, err := property.ConsumeMap(b[sz+int(n):])
	if err != nil {
		return Vertex{}, fmt.Errorf("model: vertex %v: %w", id, err)
	}
	if len(rest) != 0 {
		return Vertex{}, fmt.Errorf("model: vertex %v: %d trailing bytes", id, len(rest))
	}
	v.Props = props
	return v, nil
}

// AppendEdgeValue appends the storage encoding of an edge's properties
// (src, label and dst live in the key) to b.
func AppendEdgeValue(b []byte, e Edge) []byte {
	return property.AppendMap(b, e.Props)
}

// DecodeEdgeValue decodes an edge payload produced by AppendEdgeValue.
func DecodeEdgeValue(src, dst VertexID, label string, b []byte) (Edge, error) {
	props, rest, err := property.ConsumeMap(b)
	if err != nil {
		return Edge{}, fmt.Errorf("model: edge %v-%s->%v: %w", src, label, dst, err)
	}
	if len(rest) != 0 {
		return Edge{}, fmt.Errorf("model: edge %v-%s->%v: trailing bytes", src, label, dst)
	}
	return Edge{Src: src, Dst: dst, Label: label, Props: props}, nil
}
