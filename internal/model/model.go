// Package model defines the property-graph data model shared by every
// GraphTrek component: vertices and directed, labeled edges, each carrying a
// map of typed properties. It matches the metadata graph of the paper's
// Fig. 1 — users, executions and files as vertices; run/exe/read/write
// relationships as edges.
package model

import (
	"encoding/binary"
	"fmt"

	"graphtrek/internal/property"
)

// VertexID identifies a vertex globally across the cluster. IDs are dense
// unsigned integers assigned by the loader / generator; the partitioner
// maps them to owner servers.
//
// IDs with the top bit set are interned ids: dense integers allocated by a
// per-partition dictionary when external string names are ingested (see
// gstore's Interner). An interned id embeds its owning partition so routing
// never needs the dictionary:
//
//	bit  63      intern flag
//	bits 62..44  owning partition (19 bits)
//	bits 43..0   per-partition allocation counter (44 bits)
//
// Plain loader/generator ids never set bit 63 in practice (the generators
// assign small dense ranges), so the two id spaces do not collide and
// existing data keeps its exact pre-interning routing.
type VertexID uint64

const (
	internFlag = uint64(1) << 63
	// InternPartBits is the width of the partition field in an interned id.
	InternPartBits = 19
	// InternCtrBits is the width of the per-partition counter field.
	InternCtrBits = 44
	// MaxInternPart is the largest partition embeddable in an interned id.
	MaxInternPart = (1 << InternPartBits) - 1
	// MaxInternCtr is the largest per-partition counter value.
	MaxInternCtr = (1 << InternCtrBits) - 1
)

// InternedID packs a partition and a per-partition counter into an interned
// vertex id. Callers must keep part <= MaxInternPart and ctr <= MaxInternCtr.
func InternedID(part int, ctr uint64) VertexID {
	return VertexID(internFlag | uint64(part)<<InternCtrBits | ctr&MaxInternCtr)
}

// Interned reports whether the id was allocated by the interning dictionary.
func (id VertexID) Interned() bool { return uint64(id)&internFlag != 0 }

// InternedPartition returns the partition embedded in an interned id.
// Meaningless for non-interned ids.
func (id VertexID) InternedPartition() int {
	return int(uint64(id) >> InternCtrBits & MaxInternPart)
}

// InternedCounter returns the per-partition counter of an interned id.
func (id VertexID) InternedCounter() uint64 { return uint64(id) & MaxInternCtr }

// HashName is the stable 64-bit hash (FNV-1a) of an external vertex name.
// The interning dictionary derives an interned id's partition by routing
// HashName(name) through the ordinary partitioner, so a name's placement is
// the same one its hash would have received as a plain vertex id.
func HashName(name string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return h
}

// String renders the id for logs and CLI output.
func (id VertexID) String() string { return fmt.Sprintf("v%d", uint64(id)) }

// Vertex is one entity in the metadata graph.
type Vertex struct {
	ID    VertexID
	Label string // entity type: "User", "Execution", "File", ...
	Props property.Map
}

// Edge is one directed, labeled relationship.
type Edge struct {
	Src   VertexID
	Dst   VertexID
	Label string // relationship type: "run", "read", "write", ...
	Props property.Map
}

// AppendVertexValue appends the storage encoding of a vertex's label and
// properties (the ID lives in the key) to b.
func AppendVertexValue(b []byte, v Vertex) []byte {
	b = binary.AppendUvarint(b, uint64(len(v.Label)))
	b = append(b, v.Label...)
	return property.AppendMap(b, v.Props)
}

// DecodeVertexValue decodes a vertex payload produced by AppendVertexValue.
func DecodeVertexValue(id VertexID, b []byte) (Vertex, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || uint64(len(b)-sz) < n {
		return Vertex{}, fmt.Errorf("model: truncated vertex label")
	}
	v := Vertex{ID: id, Label: string(b[sz : sz+int(n)])}
	props, rest, err := property.ConsumeMap(b[sz+int(n):])
	if err != nil {
		return Vertex{}, fmt.Errorf("model: vertex %v: %w", id, err)
	}
	if len(rest) != 0 {
		return Vertex{}, fmt.Errorf("model: vertex %v: %d trailing bytes", id, len(rest))
	}
	v.Props = props
	return v, nil
}

// AppendEdgeValue appends the storage encoding of an edge's properties
// (src, label and dst live in the key) to b.
func AppendEdgeValue(b []byte, e Edge) []byte {
	return property.AppendMap(b, e.Props)
}

// DecodeEdgeValue decodes an edge payload produced by AppendEdgeValue.
func DecodeEdgeValue(src, dst VertexID, label string, b []byte) (Edge, error) {
	props, rest, err := property.ConsumeMap(b)
	if err != nil {
		return Edge{}, fmt.Errorf("model: edge %v-%s->%v: %w", src, label, dst, err)
	}
	if len(rest) != 0 {
		return Edge{}, fmt.Errorf("model: edge %v-%s->%v: trailing bytes", src, label, dst)
	}
	return Edge{Src: src, Dst: dst, Label: label, Props: props}, nil
}
