package model

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"graphtrek/internal/property"
)

func TestVertexValueRoundTrip(t *testing.T) {
	v := Vertex{
		ID:    42,
		Label: "Execution",
		Props: property.Map{
			"model":  property.String("A"),
			"params": property.String("-n 1024"),
			"ts":     property.Int(20140501),
		},
	}
	got, err := DecodeVertexValue(42, AppendVertexValue(nil, v))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != v.ID || got.Label != v.Label || len(got.Props) != len(v.Props) {
		t.Fatalf("got %+v", got)
	}
	for k, val := range v.Props {
		if !got.Props[k].Equal(val) {
			t.Errorf("prop %q: %v != %v", k, got.Props[k], val)
		}
	}
}

func TestVertexValueEmptyProps(t *testing.T) {
	v := Vertex{ID: 1, Label: "User"}
	got, err := DecodeVertexValue(1, AppendVertexValue(nil, v))
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != "User" || len(got.Props) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestVertexValueErrors(t *testing.T) {
	if _, err := DecodeVertexValue(1, nil); err == nil {
		t.Error("empty payload should error")
	}
	enc := AppendVertexValue(nil, Vertex{ID: 1, Label: "User", Props: property.Map{"a": property.Int(1)}})
	if _, err := DecodeVertexValue(1, enc[:len(enc)-1]); err == nil {
		t.Error("truncated payload should error")
	}
	if _, err := DecodeVertexValue(1, append(enc, 0xff)); err == nil {
		t.Error("trailing bytes should error")
	}
}

func TestEdgeValueRoundTrip(t *testing.T) {
	e := Edge{Src: 1, Dst: 2, Label: "write", Props: property.Map{"writeSize": property.Int(7 << 20)}}
	got, err := DecodeEdgeValue(1, 2, "write", AppendEdgeValue(nil, e))
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != 1 || got.Dst != 2 || got.Label != "write" || !got.Props["writeSize"].Equal(property.Int(7<<20)) {
		t.Fatalf("got %+v", got)
	}
}

func TestEdgeValueErrors(t *testing.T) {
	if _, err := DecodeEdgeValue(1, 2, "x", nil); err == nil {
		t.Error("empty payload should error")
	}
	enc := AppendEdgeValue(nil, Edge{Props: property.Map{"k": property.String("v")}})
	if _, err := DecodeEdgeValue(1, 2, "x", append(enc, 1)); err == nil {
		t.Error("trailing bytes should error")
	}
}

func TestVertexIDString(t *testing.T) {
	if got := VertexID(9).String(); !strings.Contains(got, "9") {
		t.Errorf("String() = %q", got)
	}
}

func TestVertexValueRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		props := make(property.Map)
		for i := 0; i < r.Intn(6); i++ {
			props[string(rune('a'+i))] = property.Int(r.Int63())
		}
		v := Vertex{ID: VertexID(r.Uint64()), Label: string(rune('A' + r.Intn(26)))}
		if len(props) > 0 {
			v.Props = props
		}
		got, err := DecodeVertexValue(v.ID, AppendVertexValue(nil, v))
		if err != nil || got.Label != v.Label || len(got.Props) != len(v.Props) {
			return false
		}
		for k, val := range v.Props {
			if !got.Props[k].Equal(val) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInternedIDPacking(t *testing.T) {
	cases := []struct {
		part int
		ctr  uint64
	}{
		{0, 0}, {1, 1}, {7, 12345}, {MaxInternPart, MaxInternCtr},
	}
	for _, c := range cases {
		id := InternedID(c.part, c.ctr)
		if !id.Interned() {
			t.Errorf("InternedID(%d,%d) not flagged interned", c.part, c.ctr)
		}
		if id.InternedPartition() != c.part || id.InternedCounter() != c.ctr {
			t.Errorf("InternedID(%d,%d) decodes to (%d,%d)",
				c.part, c.ctr, id.InternedPartition(), id.InternedCounter())
		}
	}
	// Plain loader ids never carry the flag.
	for _, raw := range []uint64{0, 1, 1 << 40, (1 << 63) - 1} {
		if VertexID(raw).Interned() {
			t.Errorf("plain id %d reads as interned", raw)
		}
	}
	// Distinct (part, ctr) pairs yield distinct ids.
	if InternedID(1, 0) == InternedID(0, 1) {
		t.Error("intern id collision across fields")
	}
}

func TestHashNameStable(t *testing.T) {
	// FNV-1a reference vectors; the hash is persisted implicitly via the
	// partitions embedded in interned ids, so it must never change.
	if got := HashName(""); got != 14695981039346656037 {
		t.Errorf("HashName(\"\") = %d", got)
	}
	if got := HashName("a"); got != 12638187200555641996 {
		t.Errorf("HashName(\"a\") = %d", got)
	}
	if HashName("users/sam") == HashName("users/pat") {
		t.Error("distinct names hash equal")
	}
}
