#!/usr/bin/env python3
"""Validate graphtrek-bench report JSON files (schema v1).

Usage: validate_bench.py REPORT.json [REPORT.json ...]

A report is valid when it carries schema version 1 and every experiment in
it ran to completion (no "err"), produced at least one data row, and passed
every recorded check. The bench binary already exits nonzero on failed
checks; this script is the belt-and-braces gate CI applies to the artifact
it is about to upload, so a report that *looks* fine but is structurally
empty (no rows, no checks) also fails the build.
"""

import json
import sys

SCHEMA = 1


def validate(path):
    errors = []
    with open(path) as f:
        doc = json.load(f)

    schema = doc.get("schema")
    if schema != SCHEMA:
        errors.append(f"schema {schema!r}, want {SCHEMA}")

    experiments = doc.get("experiments") or []
    if not experiments:
        errors.append("no experiments in report")

    for exp in experiments:
        name = exp.get("name", "<unnamed>")
        if exp.get("err"):
            errors.append(f"{name}: experiment error: {exp['err']}")
        if not exp.get("rows"):
            errors.append(f"{name}: no data rows")
        checks = exp.get("checks") or []
        if not checks:
            errors.append(f"{name}: no checks recorded")
        for chk in checks:
            if not chk.get("pass"):
                detail = chk.get("detail", "")
                errors.append(f"{name}: check {chk.get('name')!r} failed: {detail}")

    n_checks = sum(len(e.get("checks") or []) for e in experiments)
    return errors, len(experiments), n_checks


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        try:
            errors, n_exp, n_checks = validate(path)
        except (OSError, ValueError) as exc:
            print(f"{path}: unreadable report: {exc}", file=sys.stderr)
            failed = True
            continue
        if errors:
            failed = True
            for err in errors:
                print(f"{path}: {err}", file=sys.stderr)
        else:
            print(f"{path}: ok ({n_exp} experiment(s), {n_checks} check(s) passed)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
