#!/usr/bin/env python3
"""Validate graphtrek-bench artifacts.

Usage:
  validate_bench.py REPORT.json [REPORT.json ...]
  validate_bench.py --exposition METRICS.prom [REPORT.json ...]
  validate_bench.py --status STATUS.json [REPORT.json ...]

Default mode validates report JSON files (schema v1): a report is valid
when it carries schema version 1 and every experiment in it ran to
completion (no "err"), produced at least one data row, and passed every
recorded check. The bench binary already exits nonzero on failed checks;
this script is the belt-and-braces gate CI applies to the artifact it is
about to upload, so a report that *looks* fine but is structurally empty
(no rows, no checks) also fails the build.

--exposition validates a dumped /metrics Prometheus text scrape
(graphtrek-bench -exposition): parseable 0.0.4 text format, every native
latency histogram present with monotone cumulative buckets whose +Inf
bucket equals _count, and the histogram _count series cross-checked
against the plain counters that pin them (queue_wait and step_compute
against queue_groups_total, feed_lag against feed_records_total).

--status validates a dumped /status scrape (graphtrek-bench -status): a
JSON array of per-server documents, each ready with sane gauges.
"""

import json
import sys

SCHEMA = 1

HISTOGRAMS = [
    "graphtrek_travel_latency_seconds",
    "graphtrek_queue_wait_seconds",
    "graphtrek_step_compute_seconds",
    "graphtrek_quorum_write_seconds",
    "graphtrek_feed_lag_seconds",
]

# histogram _count -> the plain counter that must equal it, per server.
COUNT_PINS = {
    "graphtrek_queue_wait_seconds": "graphtrek_queue_groups_total",
    "graphtrek_step_compute_seconds": "graphtrek_queue_groups_total",
    "graphtrek_feed_lag_seconds": "graphtrek_feed_records_total",
}


def validate(path):
    errors = []
    with open(path) as f:
        doc = json.load(f)

    schema = doc.get("schema")
    if schema != SCHEMA:
        errors.append(f"schema {schema!r}, want {SCHEMA}")

    experiments = doc.get("experiments") or []
    if not experiments:
        errors.append("no experiments in report")

    for exp in experiments:
        name = exp.get("name", "<unnamed>")
        if exp.get("err"):
            errors.append(f"{name}: experiment error: {exp['err']}")
        if not exp.get("rows"):
            errors.append(f"{name}: no data rows")
        checks = exp.get("checks") or []
        if not checks:
            errors.append(f"{name}: no checks recorded")
        for chk in checks:
            if not chk.get("pass"):
                detail = chk.get("detail", "")
                errors.append(f"{name}: check {chk.get('name')!r} failed: {detail}")

    n_checks = sum(len(e.get("checks") or []) for e in experiments)
    return errors, len(experiments), n_checks


def parse_exposition(path):
    """Parse Prometheus 0.0.4 text into {name: {series_key: value}} where
    the series key is "" (unlabeled), the server id, or "server|le"."""
    series = {}
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            if "} " in line:
                labeled, _, val = line.partition("} ")
                name, _, labels = labeled.partition("{")
                if not labels:
                    raise ValueError(f"line {lineno}: bad labeled sample {line!r}")
                srv = le = ""
                for kv in labels.split(","):
                    k, _, v = kv.partition("=")
                    v = v.strip('"')
                    if k == "server":
                        srv = v
                    elif k == "le":
                        le = v
                    else:
                        raise ValueError(f"line {lineno}: unexpected label {k!r}")
                key = f"{srv}|{le}" if le else srv
            else:
                name, _, val = line.partition(" ")
                key = ""
                if not val:
                    raise ValueError(f"line {lineno}: bad sample {line!r}")
            series.setdefault(name, {})[key] = float(val)
    return series


def validate_exposition(path):
    errors = []
    series = parse_exposition(path)
    if not series:
        errors.append("empty exposition")
        return errors

    servers = sorted(
        {k for k in series.get("graphtrek_received_total", {})} - {""}
    )
    if not servers:
        errors.append("no per-server graphtrek_received_total series")

    for hist in HISTOGRAMS:
        buckets = series.get(hist + "_bucket", {})
        counts = series.get(hist + "_count", {})
        sums = series.get(hist + "_sum", {})
        if not buckets or not counts or not sums:
            errors.append(f"{hist}: missing _bucket/_count/_sum series")
            continue
        for srv in servers:
            # le bounds in emission order: group this server's buckets and
            # check cumulative monotonicity by ascending numeric bound.
            srv_buckets = {
                k.split("|", 1)[1]: v
                for k, v in buckets.items()
                if k.startswith(srv + "|")
            }
            if "+Inf" not in srv_buckets:
                errors.append(f"{hist}: server {srv} has no +Inf bucket")
                continue
            finite = sorted(
                ((float(le), v) for le, v in srv_buckets.items() if le != "+Inf")
            )
            prev = -1.0
            for le, v in finite + [(float("inf"), srv_buckets["+Inf"])]:
                if v < prev:
                    errors.append(
                        f"{hist}: server {srv} bucket le={le} = {v} < previous {prev}"
                    )
                prev = v
            if srv_buckets["+Inf"] != counts.get(srv):
                errors.append(
                    f"{hist}: server {srv} +Inf bucket {srv_buckets['+Inf']} != _count {counts.get(srv)}"
                )
            if counts.get(srv) == 0 and sums.get(srv, 0) != 0:
                errors.append(f"{hist}: server {srv} zero count but sum {sums.get(srv)}")

    for hist, counter in COUNT_PINS.items():
        counts = series.get(hist + "_count", {})
        pins = series.get(counter, {})
        for srv in servers:
            if counts.get(srv) != pins.get(srv):
                errors.append(
                    f"{hist}_count server {srv} = {counts.get(srv)}, "
                    f"want {counter} = {pins.get(srv)}"
                )

    total_travels = sum(
        series.get("graphtrek_travel_latency_seconds_count", {}).get(s, 0)
        for s in servers
    )
    if total_travels <= 0:
        errors.append("no travel_latency samples recorded across the cluster")
    return errors


def validate_status(path):
    errors = []
    with open(path) as f:
        docs = json.load(f)
    if not isinstance(docs, list) or not docs:
        errors.append("status dump is not a non-empty JSON array")
        return errors
    for i, doc in enumerate(docs):
        srv = doc.get("server")
        if srv != i:
            errors.append(f"document {i} is for server {srv!r}")
        if not doc.get("ready"):
            errors.append(
                f"server {srv} not ready: {doc.get('not_ready_reasons')}"
            )
        if doc.get("queue_high_water", 0) < 0 or doc.get("queue_len", 0) < 0:
            errors.append(f"server {srv}: negative queue gauges")
        for p in doc.get("partitions") or []:
            if p.get("applied_seq", 0) < p.get("commit_seq", 0):
                errors.append(
                    f"server {srv} partition {p.get('part')}: applied_seq "
                    f"{p.get('applied_seq')} < commit_seq {p.get('commit_seq')}"
                )
    return errors


def main(argv):
    args = argv[1:]
    expo_paths, status_paths = [], []
    report_paths = []
    i = 0
    while i < len(args):
        if args[i] == "--exposition":
            if i + 1 >= len(args):
                print("--exposition needs a path", file=sys.stderr)
                return 2
            expo_paths.append(args[i + 1])
            i += 2
        elif args[i] == "--status":
            if i + 1 >= len(args):
                print("--status needs a path", file=sys.stderr)
                return 2
            status_paths.append(args[i + 1])
            i += 2
        else:
            report_paths.append(args[i])
            i += 1
    if not (expo_paths or status_paths or report_paths):
        print(__doc__.strip(), file=sys.stderr)
        return 2

    failed = False

    def run(path, fn, label):
        nonlocal failed
        try:
            errors = fn(path)
        except (OSError, ValueError) as exc:
            print(f"{path}: unreadable {label}: {exc}", file=sys.stderr)
            failed = True
            return
        if errors:
            failed = True
            for err in errors:
                print(f"{path}: {err}", file=sys.stderr)
        else:
            print(f"{path}: ok ({label})")

    for path in report_paths:
        try:
            errors, n_exp, n_checks = validate(path)
        except (OSError, ValueError) as exc:
            print(f"{path}: unreadable report: {exc}", file=sys.stderr)
            failed = True
            continue
        if errors:
            failed = True
            for err in errors:
                print(f"{path}: {err}", file=sys.stderr)
        else:
            print(f"{path}: ok ({n_exp} experiment(s), {n_checks} check(s) passed)")
    for path in expo_paths:
        run(path, validate_exposition, "metrics exposition")
    for path in status_paths:
        run(path, validate_status, "status document")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
