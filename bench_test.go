// Benchmarks regenerating each table and figure of the paper's evaluation
// (§VII) as testing.B benchmarks, at a reduced scale suitable for
// `go test -bench`. The cmd/graphtrek-bench binary runs the same
// experiments at configurable scales and prints the paper-style tables;
// EXPERIMENTS.md records the paper-vs-measured comparison.
package graphtrek_test

import (
	"fmt"
	"testing"
	"time"

	"graphtrek"
	"graphtrek/internal/gen"
)

// benchCluster builds a cluster with a small RMAT-1 graph loaded.
func benchCluster(b *testing.B, servers int, stragglers *graphtrek.StragglerPlan) *graphtrek.Cluster {
	b.Helper()
	c, err := graphtrek.NewCluster(graphtrek.Options{
		Servers:       servers,
		DiskService:   50 * time.Microsecond,
		Stragglers:    stragglers,
		TravelTimeout: 5 * time.Minute,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	if err := c.Load(func(sink gen.Sink) error {
		_, err := gen.RMAT(gen.RMAT1(10, 8, 1), sink)
		return err
	}); err != nil {
		b.Fatal(err)
	}
	return c
}

// hopQuery builds v(seed).e(link)^steps.
func hopQuery(steps int) *graphtrek.Travel {
	q := graphtrek.V(1)
	for i := 0; i < steps; i++ {
		q = q.E("link")
	}
	return q
}

// runHops performs one cold-start traversal.
func runHops(b *testing.B, c *graphtrek.Cluster, steps int, mode graphtrek.Mode) {
	b.Helper()
	c.ResetDisks()
	if _, err := c.Run(hopQuery(steps), mode); err != nil {
		b.Fatal(err)
	}
}

// benchSweep is the shared shape of the Table I / Fig 8-10 benchmarks.
func benchSweep(b *testing.B, steps int, modes []graphtrek.Mode) {
	for _, servers := range []int{2, 8, 32} {
		c := benchCluster(b, servers, nil)
		for _, mode := range modes {
			b.Run(fmt.Sprintf("servers=%d/%s", servers, mode), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					runHops(b, c, steps, mode)
				}
			})
		}
	}
}

// BenchmarkTable1 regenerates Table I: the 8-step RMAT-1 traversal under
// Sync-GT, Async-GT and GraphTrek across cluster widths.
func BenchmarkTable1(b *testing.B) {
	benchSweep(b, 8, []graphtrek.Mode{
		graphtrek.ModeSync, graphtrek.ModeAsyncPlain, graphtrek.ModeGraphTrek,
	})
}

// BenchmarkFig7 regenerates Figure 7's instrumented GraphTrek run and
// reports the visit-breakdown counters as benchmark metrics.
func BenchmarkFig7(b *testing.B) {
	c := benchCluster(b, 32, nil)
	before := total(c.ServerMetrics())
	for i := 0; i < b.N; i++ {
		runHops(b, c, 8, graphtrek.ModeGraphTrek)
	}
	d := total(c.ServerMetrics()).Sub(before)
	n := float64(b.N)
	b.ReportMetric(float64(d.RealIO)/n, "realIO/op")
	b.ReportMetric(float64(d.Combined)/n, "combined/op")
	b.ReportMetric(float64(d.Redundant)/n, "redundant/op")
	if !d.Consistent() {
		b.Fatalf("visit accounting identity violated: %+v", d)
	}
}

func total(ms []graphtrek.Metrics) graphtrek.Metrics {
	var t graphtrek.Metrics
	for _, m := range ms {
		t = t.Add(m)
	}
	return t
}

// BenchmarkFig8 regenerates Figure 8 (2-step traversal, Sync vs GraphTrek).
func BenchmarkFig8(b *testing.B) {
	benchSweep(b, 2, []graphtrek.Mode{graphtrek.ModeSync, graphtrek.ModeGraphTrek})
}

// BenchmarkFig9 regenerates Figure 9 (4-step traversal).
func BenchmarkFig9(b *testing.B) {
	benchSweep(b, 4, []graphtrek.Mode{graphtrek.ModeSync, graphtrek.ModeGraphTrek})
}

// BenchmarkFig10 regenerates Figure 10 (8-step traversal).
func BenchmarkFig10(b *testing.B) {
	benchSweep(b, 8, []graphtrek.Mode{graphtrek.ModeSync, graphtrek.ModeGraphTrek})
}

// BenchmarkFig11 regenerates Figure 11: the 8-step traversal under
// emulated external interference (one straggler per step at steps 1/3/7,
// round-robin over three servers). The plan is re-armed per iteration
// because straggler budgets deplete.
func BenchmarkFig11(b *testing.B) {
	const servers = 16
	plan := graphtrek.NewStragglerPlan()
	c := benchCluster(b, servers, plan)
	arm := func() {
		sel := []int{0, servers / 2, servers - 1}
		for i, step := range []int{1, 3, 7} {
			plan.AddRule(sel[i%len(sel)], step, 2*time.Millisecond, 50)
		}
	}
	for _, mode := range []graphtrek.Mode{graphtrek.ModeSync, graphtrek.ModeGraphTrek} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				arm()
				runHops(b, c, 8, mode)
			}
		})
	}
}

// BenchmarkTable3 regenerates Table III: the 6-step audit query on the
// synthetic rich-metadata graph under the three engines.
func BenchmarkTable3(b *testing.B) {
	c, err := graphtrek.NewCluster(graphtrek.Options{
		Servers:       16,
		DiskService:   50 * time.Microsecond,
		TravelTimeout: 5 * time.Minute,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	var stats gen.MetaStats
	if err := c.Load(func(sink gen.Sink) error {
		var err error
		stats, err = gen.Metadata(gen.ScaledMeta(10000, 1), sink)
		return err
	}); err != nil {
		b.Fatal(err)
	}
	query := func() *graphtrek.Travel {
		return graphtrek.V(stats.UserID(1)).
			E("run").Ea("ts", graphtrek.RANGE, 0, 1<<20).
			E("hasExecutions").
			E("write").
			E("readBy").
			E("write").Rtn()
	}
	for _, mode := range []graphtrek.Mode{
		graphtrek.ModeSync, graphtrek.ModeAsyncPlain, graphtrek.ModeGraphTrek,
	} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.ResetDisks()
				if _, err := c.Run(query(), mode); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationOptimizations isolates each GraphTrek optimization —
// beyond the paper's evaluation — on the 8-step workload.
func BenchmarkAblationOptimizations(b *testing.B) {
	c := benchCluster(b, 16, nil)
	for _, mode := range []graphtrek.Mode{
		graphtrek.ModeAsyncPlain, graphtrek.ModeAsyncCacheOnly,
		graphtrek.ModeAsyncSchedOnly, graphtrek.ModeGraphTrek,
	} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runHops(b, c, 8, mode)
			}
		})
	}
}

// BenchmarkClientSideBaseline measures the Fig 2a client-driven traversal
// against the server-side engines, including the modeled client-server
// round-trip cost it pays per step per owner.
func BenchmarkClientSideBaseline(b *testing.B) {
	c := benchCluster(b, 8, nil)
	for _, mode := range []graphtrek.Mode{graphtrek.ModeClientSide, graphtrek.ModeGraphTrek} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runHops(b, c, 4, mode)
			}
		})
	}
}
