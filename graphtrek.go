// Package graphtrek is a Go reproduction of "GraphTrek: Asynchronous Graph
// Traversal for Property Graph-Based Metadata Management" (Dai et al.,
// IEEE CLUSTER 2015): a distributed property-graph store for HPC rich
// metadata with a server-side, asynchronous traversal engine, the GTravel
// traversal language, and the paper's two asynchronous-traversal
// optimizations — traversal-affiliate caching and execution scheduling /
// merging — alongside synchronous and client-side baselines.
//
// The top-level API assembles a simulated cluster in one process: each
// backend server gets its own graph partition, traversal engine and
// virtual disk, connected by an asynchronous message fabric. The same
// engine also runs over TCP via cmd/graphtrek-server.
//
// Quick start:
//
//	c, err := graphtrek.NewCluster(graphtrek.Options{Servers: 4})
//	defer c.Close()
//	c.Load(func(sink gen.Sink) error { ... })          // or c.AddVertex/AddEdge
//	res, err := c.Run(
//	    graphtrek.V(user).
//	        E("run").Ea("ts", graphtrek.RANGE, t0, t1).
//	        E("read").Va("type", graphtrek.EQ, "text").Rtn(),
//	    graphtrek.ModeGraphTrek)
package graphtrek

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"graphtrek/internal/core"
	"graphtrek/internal/gen"
	"graphtrek/internal/gstore"
	"graphtrek/internal/kv"
	"graphtrek/internal/model"
	"graphtrek/internal/partition"
	"graphtrek/internal/property"
	"graphtrek/internal/query"
	"graphtrek/internal/route"
	"graphtrek/internal/rpc"
	"graphtrek/internal/simio"
)

// Re-exported building blocks, so typical applications only import this
// package.
type (
	// VertexID identifies a vertex across the cluster.
	VertexID = model.VertexID
	// Vertex is one property-graph entity.
	Vertex = model.Vertex
	// Edge is one directed, labeled relationship.
	Edge = model.Edge
	// Props is a property map attached to vertices and edges.
	Props = property.Map
	// Travel is a GTravel traversal under construction.
	Travel = query.Travel
	// Plan is a compiled traversal.
	Plan = query.Plan
	// Mode selects a traversal engine.
	Mode = core.Mode
	// Metrics is a per-server engine counter snapshot.
	Metrics = core.Metrics
	// StragglerPlan injects external interference (§VII-C).
	StragglerPlan = simio.StragglerPlan
	// Value is a typed property value.
	Value = property.Value
	// Mutation is one raw (integer-addressed) write operation; batches of
	// these feed Cluster.Write and Cluster.BulkLoad.
	Mutation = gstore.Mutation
	// NamedMutation is one name-addressed write operation for
	// Cluster.Mutate, lowered through the interning dictionary.
	NamedMutation = core.NamedMutation
	// WriteOptions bounds quorum writes (timeout, retries).
	WriteOptions = core.WriteOptions
	// BulkOptions configures Cluster.BulkLoad batching.
	BulkOptions = core.BulkOptions
	// FeedOptions configures a change-feed subscription (resume cursor,
	// refresh interval).
	FeedOptions = core.FeedOptions
	// Feed is a live change-feed subscription; consume Events().
	Feed = core.Feed
	// FeedEvent is one committed, per-partition-ordered feed record.
	FeedEvent = core.FeedEvent
)

// Raw mutation opcodes for Cluster.Write / Cluster.BulkLoad batches.
const (
	OpPutVertex = gstore.OpPutVertex
	OpDelVertex = gstore.OpDelVertex
	OpPutEdge   = gstore.OpPutEdge
	OpDelEdge   = gstore.OpDelEdge
)

// Name-addressed mutation opcodes for Cluster.Mutate batches.
const (
	NamedAddVertex = core.NamedAddVertex
	NamedDelVertex = core.NamedDelVertex
	NamedAddEdge   = core.NamedAddEdge
	NamedDelEdge   = core.NamedDelEdge
)

// String makes a string property value.
func String(s string) Value { return property.String(s) }

// Int makes an integer property value (timestamps, sizes, ids).
func Int(i int64) Value { return property.Int(i) }

// Float makes a float property value.
func Float(f float64) Value { return property.Float(f) }

// Bool makes a boolean property value.
func Bool(b bool) Value { return property.Bool(b) }

// Filter operators of the GTravel language.
const (
	// EQ matches values equal to the argument.
	EQ = property.EQ
	// IN matches values contained in the argument set.
	IN = property.IN
	// RANGE matches values within [lo, hi].
	RANGE = property.RANGE
)

// Traversal engine modes.
const (
	// ModeSync is the synchronous baseline (Sync-GT).
	ModeSync = core.ModeSync
	// ModeAsyncPlain is unoptimized asynchronous traversal (Async-GT).
	ModeAsyncPlain = core.ModeAsyncPlain
	// ModeGraphTrek is the paper's optimized asynchronous engine.
	ModeGraphTrek = core.ModeGraphTrek
	// ModeClientSide is the client-driven baseline of Fig 2a.
	ModeClientSide = core.ModeClientSide
	// ModeAsyncCacheOnly ablates GraphTrek to caching only.
	ModeAsyncCacheOnly = core.ModeAsyncCacheOnly
	// ModeAsyncSchedOnly ablates GraphTrek to scheduling/merging only.
	ModeAsyncSchedOnly = core.ModeAsyncSchedOnly
)

// V starts a traversal from explicit source vertices (GTravel v()).
func V(ids ...VertexID) *Travel { return query.V(ids...) }

// VLabel starts a traversal from every vertex with the given type label.
func VLabel(label string) *Travel { return query.VLabel(label) }

// LabelKey is the reserved Va() key that filters on a vertex's type label.
const LabelKey = query.LabelKey

// NewStragglerPlan returns an empty interference plan; see
// StragglerPlan.AddRule and simio.PaperPlan.
func NewStragglerPlan() *StragglerPlan { return simio.NewStragglerPlan() }

// PaperStragglers builds the §VII-C configuration: one straggler per listed
// step, placed on the given servers round-robin, each delaying `count`
// vertex accesses by `delay`.
func PaperStragglers(servers []int, steps []int, delay time.Duration, count int) *StragglerPlan {
	return simio.PaperPlan(servers, steps, delay, count)
}

// Options configures a simulated cluster.
type Options struct {
	// Servers is the number of backend servers (required, >= 1).
	Servers int
	// DiskService is the virtual disk's per-vertex-access service time.
	// Zero disables simulated latency (fastest; unit-test mode).
	DiskService time.Duration
	// DiskParallelism is the number of concurrent I/O slots per server
	// (default 1 — a single cold spindle, the paper's hard-disk setup).
	DiskParallelism int
	// Workers sizes each server's shared executor pool: the fixed number
	// of worker goroutines multiplexing every concurrent traversal on that
	// server (per server, not per traversal).
	Workers int
	// MaxQueueDepth bounds each server's executor queue (total buffered
	// requests across all traversals). Batches beyond the bound are
	// rejected and surface as retryable traversal errors. Zero or negative
	// means unbounded.
	MaxQueueDepth int
	// CacheCap bounds each server's traversal-affiliate cache.
	CacheCap int
	// BatchSize caps dispatch message size (entries per message).
	BatchSize int
	// FlushLinger delays quiescence flushes to consolidate outgoing
	// batches. Zero derives a default from DiskService.
	FlushLinger time.Duration
	// Stragglers, when set, injects external interference.
	Stragglers *StragglerPlan
	// StoreDir, when non-empty, backs each server with a persistent
	// kv/gstore partition under StoreDir/server-N; otherwise partitions
	// live in memory.
	StoreDir string
	// KVOptions tunes the persistent stores (ignored for in-memory).
	KVOptions kv.Options
	// TravelTimeout is the coordinator failure-detection deadline.
	TravelTimeout time.Duration
	// HeartbeatInterval drives the backend failure detector: crashed or
	// partitioned peers are suspected after SuspectAfter of silence and
	// traversals touching them fail immediately for retry, instead of
	// waiting out TravelTimeout. Zero selects 500ms; negative disables
	// the detector.
	HeartbeatInterval time.Duration
	// SuspectAfter is the silence threshold before a peer is suspected
	// dead (default 3 x HeartbeatInterval).
	SuspectAfter time.Duration
	// InboxSize is the per-node fabric inbox capacity.
	InboxSize int
	// ClientRTT models the client-server network round trip, which the
	// client-side traversal baseline pays per step per owner (Fig 2a).
	// Zero derives a default from DiskService.
	ClientRTT time.Duration
	// Partitioner overrides the default edge-cut hash partitioner, e.g.
	// with partition.NewBalanced for degree-aware placement. Its N() must
	// equal Servers.
	Partitioner partition.Partitioner
	// TraceCap sizes each server's execution-trace ring buffer (spans per
	// server). Zero selects the engine default (8192); negative disables
	// per-execution tracing.
	TraceCap int
	// SlowTravelNs makes coordinators capture the full causal trace DAG of
	// any traversal at least this slow end-to-end (nanoseconds): spans are
	// pulled from every server, assembled with critical-path attribution,
	// and retained in a bounded ring per server — see core.Server.SlowTravels
	// and the obs /traces/slow endpoint. Zero or negative disables capture.
	SlowTravelNs int64
	// IndexKeys lists property keys to secondary-index on every partition
	// at boot, so step-0 va() filters on them seed via index pushdown
	// instead of a label scan. Equivalent to calling EnableIndex for each
	// key right after NewCluster, but before the engines see traffic.
	IndexKeys []string
	// ReadCacheBytes, when positive, wraps each partition in a sharded
	// LRU read cache of roughly this many bytes (decoded vertices +
	// materialized adjacency lists), the stand-in for the RocksDB block
	// cache of §VI. Zero disables the cache.
	ReadCacheBytes int64
	// ReplicationFactor, when >= 2, gives every partition a primary plus
	// ReplicationFactor-1 follower replicas: quorum-acknowledged writes via
	// Client.Write, automatic epoch-fenced failover when the failure
	// detector condemns a primary, and online shard handoff via
	// JoinPartition. Each node holds its own route view and converges via
	// gossip. The default (0 or 1) runs the seed cluster's unreplicated
	// layout, bit-for-bit identical behavior. Incompatible with a custom
	// Partitioner.
	ReplicationFactor int
	// WriteTimeout bounds how long a primary holds a quorum write before
	// failing it as retryable (default 5s).
	WriteTimeout time.Duration
}

// Cluster is an in-process GraphTrek deployment: N backend servers plus one
// client endpoint on an asynchronous message fabric.
type Cluster struct {
	opts    Options
	part    partition.Partitioner
	fabric  *rpc.Fabric
	servers []*core.Server
	stores  []gstore.Graph
	disks   []*simio.Disk
	client  *core.Client
	// views holds each server's route view (replicated clusters only);
	// croute is the client's. Separate views per node — they converge
	// through gossip, like a real deployment.
	views  []*route.View
	croute *route.View
	closed bool
}

// NewCluster assembles and starts a cluster.
func NewCluster(opts Options) (*Cluster, error) {
	if opts.Servers < 1 {
		return nil, errors.New("graphtrek: Options.Servers must be at least 1")
	}
	if opts.DiskParallelism <= 0 {
		opts.DiskParallelism = 1
	}
	if opts.FlushLinger == 0 && opts.DiskService > 0 {
		// Consolidate batches arriving within a couple of OS timer ticks.
		opts.FlushLinger = 2 * time.Millisecond
	}
	if opts.HeartbeatInterval == 0 {
		opts.HeartbeatInterval = 500 * time.Millisecond
	}
	if opts.HeartbeatInterval < 0 {
		opts.HeartbeatInterval = 0 // detector disabled
	}
	replicated := opts.ReplicationFactor >= 2
	part := opts.Partitioner
	if part == nil {
		part = partition.NewHash(opts.Servers)
	} else if part.N() != opts.Servers {
		return nil, fmt.Errorf("graphtrek: partitioner covers %d servers, cluster has %d", part.N(), opts.Servers)
	} else if replicated {
		return nil, errors.New("graphtrek: ReplicationFactor and a custom Partitioner are mutually exclusive (the route view is the partitioner)")
	}
	c := &Cluster{
		opts:   opts,
		part:   part,
		fabric: rpc.NewFabric(opts.Servers+1, opts.InboxSize),
	}
	if replicated {
		// One route view per node, all booted from the same identity table;
		// failover and handoff move them apart and gossip re-converges them.
		for i := 0; i < opts.Servers; i++ {
			c.views = append(c.views, route.NewView(route.Identity(opts.Servers, opts.ReplicationFactor)))
		}
		c.croute = route.NewView(route.Identity(opts.Servers, opts.ReplicationFactor))
		c.part = c.croute
	}
	for i := 0; i < opts.Servers; i++ {
		var store gstore.Graph
		if opts.StoreDir != "" {
			s, err := gstore.Open(filepath.Join(opts.StoreDir, fmt.Sprintf("server-%02d", i)), opts.KVOptions)
			if err != nil {
				c.Close()
				return nil, err
			}
			store = s
		} else {
			store = gstore.NewMemStore()
		}
		if opts.ReadCacheBytes > 0 {
			store = gstore.NewCachedGraph(store, opts.ReadCacheBytes)
		}
		for _, key := range opts.IndexKeys {
			if err := store.(gstore.PropertyIndex).EnableIndex(key); err != nil {
				c.stores = append(c.stores, store) // let Close release it
				c.Close()
				return nil, err
			}
		}
		c.stores = append(c.stores, store)
		disk := simio.NewDisk(opts.DiskService, opts.DiskParallelism)
		if opts.Stragglers != nil {
			disk.AttachStragglers(i, opts.Stragglers)
		}
		c.disks = append(c.disks, disk)
		srvPart := c.part
		var srvRoute *route.View
		if replicated {
			srvPart = c.views[i]
			srvRoute = c.views[i]
		}
		srv := core.NewServer(core.Config{
			ID:                i,
			Store:             store,
			Part:              srvPart,
			Route:             srvRoute,
			WriteTimeout:      opts.WriteTimeout,
			ReplicationFactor: opts.ReplicationFactor,
			Disk:              disk,
			Workers:           opts.Workers,
			MaxQueueDepth:     opts.MaxQueueDepth,
			CacheCap:          opts.CacheCap,
			BatchSize:         opts.BatchSize,
			FlushLinger:       opts.FlushLinger,
			TravelTimeout:     opts.TravelTimeout,
			HeartbeatInterval: opts.HeartbeatInterval,
			SuspectAfter:      opts.SuspectAfter,
			TraceCap:          opts.TraceCap,
			SlowTravelNs:      opts.SlowTravelNs,
		})
		srv.Bind(c.fabric.Endpoint(i))
		if err := c.fabric.Endpoint(i).Start(srv.Handle); err != nil {
			c.Close()
			return nil, err
		}
		c.servers = append(c.servers, srv)
	}
	c.client = core.NewClient(c.part)
	c.client.Bind(c.fabric.Endpoint(opts.Servers))
	if opts.ClientRTT == 0 && opts.DiskService > 0 {
		opts.ClientRTT = time.Millisecond
	}
	c.client.SetRTT(opts.ClientRTT)
	if err := c.fabric.Endpoint(opts.Servers).Start(c.client.Handle); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// Close shuts the cluster down and closes the stores.
func (c *Cluster) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	for _, s := range c.servers {
		s.Close()
	}
	c.fabric.Close()
	var firstErr error
	for _, st := range c.stores {
		if err := st.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Servers returns the cluster size.
func (c *Cluster) Servers() int { return c.opts.Servers }

// Owner returns the backend server owning a vertex (edge-cut hash
// partitioning).
func (c *Cluster) Owner(id VertexID) int { return c.part.Owner(id) }

// AddVertex stores a vertex on its owning server — on every replica of its
// partition when the cluster is replicated (bulk loading writes the stores
// directly, bypassing the quorum write path; use Write for runtime
// mutations).
func (c *Cluster) AddVertex(v Vertex) error {
	for _, s := range c.replicaStores(v.ID) {
		if err := s.PutVertex(v); err != nil {
			return err
		}
	}
	return nil
}

// AddEdge stores a directed edge with its source vertex (edge-cut), on
// every replica of the source's partition when the cluster is replicated.
func (c *Cluster) AddEdge(e Edge) error {
	for _, s := range c.replicaStores(e.Src) {
		if err := s.PutEdge(e); err != nil {
			return err
		}
	}
	return nil
}

// replicaStores lists the stores holding a vertex's partition: just the
// owner on unreplicated clusters, the full replica set otherwise.
func (c *Cluster) replicaStores(id VertexID) []gstore.Graph {
	if c.croute == nil {
		return c.stores[c.part.Owner(id) : c.part.Owner(id)+1]
	}
	a := c.croute.Assignment(c.croute.Partition(id))
	out := make([]gstore.Graph, 0, 1+len(a.Followers))
	for _, r := range a.Replicas() {
		out = append(out, c.stores[r])
	}
	return out
}

// Write applies graph mutations through the replication protocol: routed
// to each partition's primary and acknowledged once a quorum holds them.
// Only available on replicated clusters (ReplicationFactor >= 2).
func (c *Cluster) Write(muts []gstore.Mutation, opts core.WriteOptions) error {
	return c.client.Write(muts, opts)
}

// Mutate applies a batch of name-addressed add/update/delete mutations
// through the quorum write path: add ops intern their names, deletes
// resolve read-only (unknown names are no-ops), and the lowered mutations
// ship grouped by partition. The returned map holds the interned id of
// every name an add op touched. Only available on replicated clusters
// (ReplicationFactor >= 2).
func (c *Cluster) Mutate(muts []core.NamedMutation, opts core.WriteOptions) (map[string]VertexID, error) {
	return c.client.Mutate(muts, opts)
}

// BulkLoad ingests a mutation set through the quorum write path at full
// cluster width: per-partition streams run concurrently (saturating every
// primary), oversized runs split into bounded rounds, and same-partition
// order is preserved so later writes win. Only available on replicated
// clusters (ReplicationFactor >= 2).
func (c *Cluster) BulkLoad(muts []gstore.Mutation, opts core.BulkOptions) error {
	return c.client.BulkLoad(muts, opts)
}

// SubscribeFeed opens a change-feed subscription on one partition: an
// ordered stream of quorum-committed mutation batches with a resumable
// cursor that survives primary failover. Only available on replicated
// clusters (ReplicationFactor >= 2).
func (c *Cluster) SubscribeFeed(part int, opts core.FeedOptions) (*core.Feed, error) {
	return c.client.SubscribeFeed(part, opts)
}

// Intern maps external string vertex names to dense interned ids,
// allocating new ids for names not seen before. Ids are positionally
// aligned with names and stable across calls — re-interning returns the
// existing id. On replicated clusters the allocation runs through the
// quorum write path (so every replica reconstructs the same mapping); on
// unreplicated clusters it writes the owning partition's store directly.
// Use the returned ids as the graph's vertex ids: they embed their
// partition, so routing never needs the dictionary.
func (c *Cluster) Intern(names ...string) ([]VertexID, error) {
	if c.croute != nil {
		return c.client.Intern(names, core.WriteOptions{})
	}
	out := make([]VertexID, len(names))
	for i, name := range names {
		p := c.part.Owner(model.VertexID(model.HashName(name)))
		in, ok := gstore.InternerOf(c.stores[p])
		if !ok {
			return nil, fmt.Errorf("graphtrek: server %d store does not support interning", p)
		}
		id, err := in.Intern(name, p)
		if err != nil {
			return nil, err
		}
		out[i] = id
	}
	return out, nil
}

// NameOf materializes an interned id back to its external name — the
// client-boundary direction, e.g. for presenting rtn() results. Reports
// false for ids that were never interned.
func (c *Cluster) NameOf(id VertexID) (string, bool, error) {
	in, ok := gstore.InternerOf(c.stores[c.part.Owner(id)])
	if !ok {
		return "", false, nil
	}
	return in.LookupName(id)
}

// ResolveName is the read-only direction of Intern: the interned id of a
// name, or false if the name was never interned.
func (c *Cluster) ResolveName(name string) (VertexID, bool, error) {
	p := c.part.Owner(model.VertexID(model.HashName(name)))
	in, ok := gstore.InternerOf(c.stores[p])
	if !ok {
		return 0, false, nil
	}
	return in.LookupID(name)
}

// KillServer simulates a crash of backend i: the engine stops and the
// node's endpoint closes, so in-flight and future messages to it vanish.
// The failure detector condemns it within SuspectAfter, and on replicated
// clusters its primaried partitions fail over to followers.
func (c *Cluster) KillServer(i int) {
	c.servers[i].Close()
	c.fabric.Endpoint(i).Close()
}

// JoinPartition streams partition part's state onto backend server (online
// shard handoff): a snapshot plus the live append tail, then a fresh epoch
// that adds the server to the replica set — promotable from then on.
func (c *Cluster) JoinPartition(server, part int) error {
	return c.servers[server].JoinPartition(part)
}

// RouteView returns backend i's route view on a replicated cluster (nil
// otherwise) — each node has its own, converging via gossip.
func (c *Cluster) RouteView(i int) *route.View {
	if c.views == nil || i < 0 || i >= len(c.views) {
		return nil
	}
	return c.views[i]
}

// ClientRouteView returns the client's route view on a replicated cluster,
// nil otherwise.
func (c *Cluster) ClientRouteView() *route.View { return c.croute }

// Sink returns a generator sink that routes elements to their owners; pass
// it to gen.RMAT or gen.Metadata.
func (c *Cluster) Sink() gen.Sink {
	return gen.Funcs{Vertex: c.AddVertex, Edge: c.AddEdge}
}

// Load runs a generator-style loader against the cluster's sink.
func (c *Cluster) Load(load func(gen.Sink) error) error {
	return load(c.Sink())
}

// Run submits a traversal under the given engine mode and returns the
// result vertices, sorted and deduplicated.
func (c *Cluster) Run(t *Travel, mode Mode) ([]VertexID, error) {
	return c.client.Submit(t, core.SubmitOptions{Mode: mode, Coordinator: -1})
}

// RunPlan submits a compiled plan with full submission options.
func (c *Cluster) RunPlan(p *Plan, opts core.SubmitOptions) ([]VertexID, error) {
	return c.client.SubmitPlan(p, opts)
}

// RunAsync starts a server-side traversal and returns a handle that can
// poll the coordinator's §IV-C progress report while the cluster works.
func (c *Cluster) RunAsync(t *Travel, mode Mode) (*core.Handle, error) {
	plan, err := t.Compile()
	if err != nil {
		return nil, err
	}
	return c.client.SubmitPlanAsync(plan, core.SubmitOptions{Mode: mode, Coordinator: -1})
}

// RunUnion runs several traversals concurrently and returns the
// deduplicated union of their results — the paper's §III recipe for OR
// filter semantics ("users can issue different traversals and combine
// their results").
func (c *Cluster) RunUnion(mode Mode, travels ...*Travel) ([]VertexID, error) {
	handles := make([]*core.Handle, 0, len(travels))
	for _, t := range travels {
		h, err := c.RunAsync(t, mode)
		if err != nil {
			return nil, err
		}
		handles = append(handles, h)
	}
	seen := make(map[VertexID]bool)
	var out []VertexID
	var firstErr error
	for _, h := range handles {
		res, err := h.Wait(0)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		for _, id := range res {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Client exposes the underlying traversal client for advanced submission
// options (explicit coordinator, timeout).
func (c *Cluster) Client() *core.Client { return c.client }

// Store returns server i's graph partition (e.g. for direct inspection).
func (c *Cluster) Store(i int) gstore.Graph { return c.stores[i] }

// Server returns backend server i's engine, exposing its metrics, trace
// buffers and queue gauges (e.g. for an obs.Handler).
func (c *Cluster) Server(i int) *core.Server { return c.servers[i] }

// ServerMetrics returns each server's engine counters, indexed by server.
func (c *Cluster) ServerMetrics() []Metrics {
	out := make([]Metrics, len(c.servers))
	for i, s := range c.servers {
		out[i] = s.Metrics()
	}
	return out
}

// Progress reports live executions per step for a traversal coordinated by
// server `coord` (§IV-C progress estimation).
func (c *Cluster) Progress(coord int, travelID uint64) (map[int32]int, bool) {
	return c.servers[coord].Progress(travelID)
}

// DiskAccesses reports each server's simulated disk access count.
func (c *Cluster) DiskAccesses() []int64 {
	out := make([]int64, len(c.disks))
	for i, d := range c.disks {
		out[i] = d.Accesses()
	}
	return out
}

// EnableIndex builds a secondary index on a property key across every
// partition — the "searching or indexing mechanisms" §III says GTravel
// entry points are resolved with.
func (c *Cluster) EnableIndex(key string) error {
	for _, st := range c.stores {
		if err := st.(gstore.PropertyIndex).EnableIndex(key); err != nil {
			return err
		}
	}
	return nil
}

// FindVertices resolves an exact property match across the cluster (the
// index must have been enabled), returning ids in ascending order — ready
// to seed a traversal with V(ids...).
func (c *Cluster) FindVertices(key string, value Value) ([]VertexID, error) {
	// On replicated clusters the same vertex is indexed on every replica;
	// dedup so callers see each id once.
	seen := make(map[VertexID]bool)
	var out []VertexID
	for _, st := range c.stores {
		ids, err := st.(gstore.PropertyIndex).LookupVertices(key, value)
		if err != nil {
			return nil, err
		}
		for _, id := range ids {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// ResetDisks restores every simulated disk to the cold-start state the
// paper's evaluations begin each traversal from. Call it between timed
// traversals that share one cluster.
func (c *Cluster) ResetDisks() {
	for _, d := range c.disks {
		d.Reset()
	}
}
