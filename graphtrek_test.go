package graphtrek_test

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"graphtrek"
	"graphtrek/internal/gen"
	"graphtrek/internal/model"
)

func newTestCluster(t *testing.T, opts graphtrek.Options) *graphtrek.Cluster {
	t.Helper()
	if opts.TravelTimeout == 0 {
		opts.TravelTimeout = 15 * time.Second
	}
	c, err := graphtrek.NewCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func loadFig1(t *testing.T, c *graphtrek.Cluster) {
	t.Helper()
	for _, v := range []graphtrek.Vertex{
		{ID: 1, Label: "User", Props: graphtrek.Props{"name": graphtrek.String("sam")}},
		{ID: 10, Label: "Execution", Props: graphtrek.Props{"params": graphtrek.String("-n 1024")}},
		{ID: 20, Label: "File", Props: graphtrek.Props{"type": graphtrek.String("text")}},
		{ID: 21, Label: "File", Props: graphtrek.Props{"type": graphtrek.String("data")}},
	} {
		if err := c.AddVertex(v); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range []graphtrek.Edge{
		{Src: 1, Dst: 10, Label: "run", Props: graphtrek.Props{"ts": graphtrek.Int(5)}},
		{Src: 10, Dst: 20, Label: "read"},
		{Src: 10, Dst: 21, Label: "write"},
	} {
		if err := c.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
}

func TestClusterEndToEndAllModes(t *testing.T) {
	c := newTestCluster(t, graphtrek.Options{Servers: 3})
	loadFig1(t, c)
	q := func() *graphtrek.Travel {
		return graphtrek.V(1).E("run").E("read").Va("type", graphtrek.EQ, "text")
	}
	for _, mode := range []graphtrek.Mode{
		graphtrek.ModeSync, graphtrek.ModeAsyncPlain, graphtrek.ModeGraphTrek,
		graphtrek.ModeClientSide, graphtrek.ModeAsyncCacheOnly, graphtrek.ModeAsyncSchedOnly,
	} {
		got, err := c.Run(q(), mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !reflect.DeepEqual(got, []graphtrek.VertexID{20}) {
			t.Errorf("%v: got %v, want [v20]", mode, got)
		}
	}
}

func TestClusterRejectsZeroServers(t *testing.T) {
	if _, err := graphtrek.NewCluster(graphtrek.Options{}); err == nil {
		t.Fatal("expected error for zero servers")
	}
}

func TestClusterPersistentStores(t *testing.T) {
	dir := t.TempDir()
	c := newTestCluster(t, graphtrek.Options{Servers: 2, StoreDir: dir})
	loadFig1(t, c)
	got, err := c.Run(graphtrek.V(1).E("run").E("read"), graphtrek.ModeGraphTrek)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []graphtrek.VertexID{20}) {
		t.Fatalf("got %v", got)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Re-open the same directories: the graph must survive.
	c2 := newTestCluster(t, graphtrek.Options{Servers: 2, StoreDir: dir})
	got, err = c2.Run(graphtrek.V(1).E("run").E("read"), graphtrek.ModeSync)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []graphtrek.VertexID{20}) {
		t.Fatalf("after reopen: got %v", got)
	}
}

func TestClusterOwnerRouting(t *testing.T) {
	c := newTestCluster(t, graphtrek.Options{Servers: 4})
	loadFig1(t, c)
	// Every vertex must be stored exactly on its owner.
	for _, id := range []graphtrek.VertexID{1, 10, 20, 21} {
		owner := c.Owner(id)
		for s := 0; s < c.Servers(); s++ {
			_, ok, err := c.Store(s).GetVertex(id)
			if err != nil {
				t.Fatal(err)
			}
			if ok != (s == owner) {
				t.Errorf("vertex %v on server %d: present=%v, owner=%d", id, s, ok, owner)
			}
		}
	}
}

func TestClusterGeneratorLoad(t *testing.T) {
	c := newTestCluster(t, graphtrek.Options{Servers: 4})
	var stats gen.MetaStats
	err := c.Load(func(sink gen.Sink) error {
		var err error
		stats, err = gen.Metadata(gen.MetaConfig{
			Users: 3, Jobs: 9, Executions: 90, Files: 30, Seed: 5,
		}, sink)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// The Table III query shape must run end to end.
	res, err := c.Run(graphtrek.V(stats.UserID(0)).
		E("run").E("hasExecutions").E("write").E("readBy").E("write").Rtn(),
		graphtrek.ModeGraphTrek)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check against Sync.
	res2, err := c.Run(graphtrek.V(stats.UserID(0)).
		E("run").E("hasExecutions").E("write").E("readBy").E("write").Rtn(),
		graphtrek.ModeSync)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, res2) {
		t.Errorf("engines disagree: %v vs %v", res, res2)
	}
}

func TestClusterMetricsAndDiskAccounting(t *testing.T) {
	c := newTestCluster(t, graphtrek.Options{Servers: 3})
	loadFig1(t, c)
	if _, err := c.Run(graphtrek.V(1).E("run").E("read"), graphtrek.ModeGraphTrek); err != nil {
		t.Fatal(err)
	}
	ms := c.ServerMetrics()
	if len(ms) != 3 {
		t.Fatalf("metrics for %d servers", len(ms))
	}
	var total graphtrek.Metrics
	for _, m := range ms {
		if !m.Consistent() {
			t.Errorf("inconsistent accounting: %+v", m)
		}
		total = total.Add(m)
	}
	if total.RealIO == 0 {
		t.Error("no I/O recorded")
	}
	var accesses int64
	for _, a := range c.DiskAccesses() {
		accesses += a
	}
	if accesses == 0 {
		t.Error("no disk accesses recorded")
	}
	c.ResetDisks() // must not panic and must keep counters
}

func TestClusterBuilderErrorSurfaces(t *testing.T) {
	c := newTestCluster(t, graphtrek.Options{Servers: 2})
	if _, err := c.Run(graphtrek.V(1).E(""), graphtrek.ModeGraphTrek); err == nil {
		t.Fatal("expected builder error")
	}
}

func TestValueConstructors(t *testing.T) {
	if !graphtrek.String("x").Equal(graphtrek.String("x")) {
		t.Error("String")
	}
	if graphtrek.Int(1).Equal(graphtrek.Float(1)) {
		t.Error("Int should differ from Float")
	}
	if !graphtrek.Bool(true).B() {
		t.Error("Bool")
	}
	if graphtrek.Float(2.5).F64() != 2.5 {
		t.Error("Float")
	}
}

func TestStragglerOptionsWiring(t *testing.T) {
	plan := graphtrek.PaperStragglers([]int{0, 1}, []int{1, 3}, time.Millisecond, 5)
	c := newTestCluster(t, graphtrek.Options{
		Servers:     2,
		DiskService: 100 * time.Microsecond,
		Stragglers:  plan,
	})
	loadFig1(t, c)
	if _, err := c.Run(graphtrek.V(1).E("run").E("read"), graphtrek.ModeGraphTrek); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentMixedTraversals exercises the paper's motivating scenario:
// multiple concurrent traversals interfering on the same cluster.
func TestConcurrentMixedTraversals(t *testing.T) {
	c := newTestCluster(t, graphtrek.Options{Servers: 4})
	if err := c.Load(func(sink gen.Sink) error {
		_, err := gen.RMAT(gen.RMAT1(8, 4, 2), sink)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	modes := []graphtrek.Mode{graphtrek.ModeSync, graphtrek.ModeGraphTrek, graphtrek.ModeAsyncPlain}
	type result struct {
		idx int
		res []graphtrek.VertexID
		err error
	}
	const n = 9
	ch := make(chan result, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			q := graphtrek.V(model.VertexID(i % 4)).E("link").E("link")
			res, err := c.Run(q, modes[i%len(modes)])
			ch <- result{i, res, err}
		}(i)
	}
	bySeed := map[int][]graphtrek.VertexID{}
	for i := 0; i < n; i++ {
		r := <-ch
		if r.err != nil {
			t.Fatalf("traversal %d: %v", r.idx, r.err)
		}
		seed := r.idx % 4
		if prev, ok := bySeed[seed]; ok && !reflect.DeepEqual(prev, r.res) {
			t.Errorf("seed %d: engines disagree across concurrent runs", seed)
		}
		bySeed[seed] = r.res
	}
}

func ExampleCluster() {
	c, _ := graphtrek.NewCluster(graphtrek.Options{Servers: 2})
	defer c.Close()
	c.AddVertex(graphtrek.Vertex{ID: 1, Label: "User"})
	c.AddVertex(graphtrek.Vertex{ID: 2, Label: "File",
		Props: graphtrek.Props{"type": graphtrek.String("text")}})
	c.AddEdge(graphtrek.Edge{Src: 1, Dst: 2, Label: "read"})
	files, _ := c.Run(
		graphtrek.V(1).E("read").Va("type", graphtrek.EQ, "text"),
		graphtrek.ModeGraphTrek)
	fmt.Println(files)
	// Output: [v2]
}

func TestRunUnionORSemantics(t *testing.T) {
	c := newTestCluster(t, graphtrek.Options{Servers: 3})
	loadFig1(t, c)
	// OR over file types: issue one traversal per branch, union results —
	// the paper's recipe (§III: "OR is not explicitly supported ... users
	// can issue different traversals and combine their results").
	got, err := c.RunUnion(graphtrek.ModeGraphTrek,
		graphtrek.V(1).E("run").E("read").Va("type", graphtrek.EQ, "text"),
		graphtrek.V(1).E("run").E("write").Va("type", graphtrek.EQ, "data"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []graphtrek.VertexID{20, 21}) {
		t.Errorf("union = %v, want [v20 v21]", got)
	}
	// A failing branch surfaces its error.
	if _, err := c.RunUnion(graphtrek.ModeGraphTrek, graphtrek.V(1).E("")); err == nil {
		t.Error("builder error should surface from union")
	}
}

// TestLiveUpdatesDuringTraversal exercises the paper's online requirement:
// the store ingests production updates while traversals run. The traversal
// result may or may not see the new data (no snapshot isolation is
// claimed), but nothing may deadlock, error, or corrupt state.
func TestLiveUpdatesDuringTraversal(t *testing.T) {
	c := newTestCluster(t, graphtrek.Options{Servers: 4})
	if err := c.Load(func(sink gen.Sink) error {
		_, err := gen.RMAT(gen.RMAT1(9, 6, 3), sink)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	writerDone := make(chan error, 1)
	go func() {
		defer close(writerDone)
		id := graphtrek.VertexID(1 << 20)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := c.AddVertex(graphtrek.Vertex{ID: id, Label: "Live"}); err != nil {
				writerDone <- err
				return
			}
			if err := c.AddEdge(graphtrek.Edge{Src: id, Dst: id - 1, Label: "link"}); err != nil {
				writerDone <- err
				return
			}
			id++
		}
	}()
	for i := 0; i < 5; i++ {
		q := graphtrek.V(graphtrek.VertexID(i)).E("link").E("link").E("link")
		if _, err := c.Run(q, graphtrek.ModeGraphTrek); err != nil {
			t.Fatalf("traversal %d during live updates: %v", i, err)
		}
	}
	close(stop)
	if err := <-writerDone; err != nil {
		t.Fatalf("live writer: %v", err)
	}
}

func TestClusterPropertyIndex(t *testing.T) {
	c := newTestCluster(t, graphtrek.Options{Servers: 4})
	loadFig1(t, c)
	if err := c.EnableIndex("name"); err != nil {
		t.Fatal(err)
	}
	ids, err := c.FindVertices("name", graphtrek.String("sam"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []graphtrek.VertexID{1}) {
		t.Fatalf("FindVertices(sam) = %v", ids)
	}
	// The resolved ids seed a traversal — the §III entry-point pattern.
	files, err := c.Run(graphtrek.V(ids...).E("run").E("read"), graphtrek.ModeGraphTrek)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(files, []graphtrek.VertexID{20}) {
		t.Errorf("seeded traversal = %v", files)
	}
	if _, err := c.FindVertices("never-indexed", graphtrek.Int(1)); err == nil {
		t.Error("unindexed lookup should error")
	}
}
