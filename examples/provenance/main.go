// Provenance support (§II-B2): the generalized First Provenance Challenge
// query — "find the executions whose model is A and whose input files have
// annotation B". The interesting part is rtn(): the traversal returns its
// *source* vertices (executions), not the files it ends on, and only those
// sources with at least one path surviving every later filter (§IV-D).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"graphtrek"
)

func main() {
	c, err := graphtrek.NewCluster(graphtrek.Options{Servers: 6})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// Build a workflow graph: executions read input files; some files
	// carry the annotation the analyst is hunting for.
	r := rand.New(rand.NewSource(4))
	const nExecs, nFiles = 60, 120
	models := []string{"A", "B"}
	for i := 0; i < nExecs; i++ {
		err := c.AddVertex(graphtrek.Vertex{
			ID: graphtrek.VertexID(i), Label: "Execution",
			Props: graphtrek.Props{"model": graphtrek.String(models[r.Intn(2)])},
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	annotated := 0
	for i := 0; i < nFiles; i++ {
		props := graphtrek.Props{"name": graphtrek.String(fmt.Sprintf("input-%03d", i))}
		if r.Intn(5) == 0 {
			props["annotation"] = graphtrek.String("B")
			annotated++
		}
		err := c.AddVertex(graphtrek.Vertex{
			ID: graphtrek.VertexID(1000 + i), Label: "File", Props: props,
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < nExecs; i++ {
		for k := 0; k < 1+r.Intn(3); k++ {
			err := c.AddEdge(graphtrek.Edge{
				Src:   graphtrek.VertexID(i),
				Dst:   graphtrek.VertexID(1000 + r.Intn(nFiles)),
				Label: "read",
			})
			if err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("workflow graph: %d executions, %d files (%d annotated 'B')\n",
		nExecs, nFiles, annotated)

	// The paper's §III-A2 command:
	//   GTravel.v().va('type', EQ, 'Execution').rtn()
	//          .va('model', EQ, 'A')
	//          .e('read')
	//          .va('annotation', EQ, 'B')
	q := graphtrek.V().
		Va(graphtrek.LabelKey, graphtrek.EQ, "Execution").Rtn().
		Va("model", graphtrek.EQ, "A").
		E("read").
		Va("annotation", graphtrek.EQ, "B")

	execs, err := c.Run(q, graphtrek.ModeGraphTrek)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model-A executions whose inputs carry annotation B: %d\n", len(execs))
	for _, id := range execs {
		fmt.Printf("  execution %v\n", id)
	}

	// Cross-check with the synchronous engine: identical result set.
	execsSync, err := c.Run(graphtrek.V().
		Va(graphtrek.LabelKey, graphtrek.EQ, "Execution").Rtn().
		Va("model", graphtrek.EQ, "A").
		E("read").
		Va("annotation", graphtrek.EQ, "B"),
		graphtrek.ModeSync)
	if err != nil {
		log.Fatal(err)
	}
	if len(execsSync) != len(execs) {
		log.Fatalf("engines disagree: %d vs %d", len(execsSync), len(execs))
	}
	fmt.Println("Sync-GT returns the identical set — engines differ only in execution strategy")
}
