// Progress tracing (§IV-C): although an asynchronous traversal has no
// well-defined "current step", the coordinator's execution ledger knows how
// many traversal executions are live at each step, which estimates the
// remaining work. This example submits a long traversal asynchronously,
// polls that report while the cluster grinds, then demonstrates
// cancellation and the §IV-C restart-on-failure policy.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"graphtrek"
	"graphtrek/internal/gen"
)

func main() {
	// A deliberately slow virtual disk keeps the traversal observable.
	c, err := graphtrek.NewCluster(graphtrek.Options{
		Servers:     8,
		DiskService: 2 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	if err := c.Load(func(sink gen.Sink) error {
		_, err := gen.RMAT(gen.RMAT1(11, 8, 1), sink)
		return err
	}); err != nil {
		log.Fatal(err)
	}

	q := func() *graphtrek.Travel {
		t := graphtrek.V(1)
		for i := 0; i < 6; i++ {
			t = t.E("link")
		}
		return t
	}

	h, err := c.RunAsync(q(), graphtrek.ModeGraphTrek)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traversal %d submitted to coordinator %d\n", h.TravelID(), h.Coordinator())

	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-time.After(30 * time.Millisecond):
			case <-done:
				return
			}
			prog, err := h.Progress(2 * time.Second)
			if err != nil || len(prog) == 0 {
				return
			}
			steps := make([]int32, 0, len(prog))
			for s := range prog {
				steps = append(steps, s)
			}
			sort.Slice(steps, func(i, j int) bool { return steps[i] < steps[j] })
			fmt.Print("  live executions:")
			for _, s := range steps {
				fmt.Printf("  step %d: %d", s, prog[s])
			}
			fmt.Println()
		}
	}()

	res, err := h.Wait(5 * time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	<-done
	fmt.Printf("traversal finished: %d vertices\n\n", len(res))

	// Cancellation: abort a second traversal mid-flight.
	h2, err := c.RunAsync(q(), graphtrek.ModeGraphTrek)
	if err != nil {
		log.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if err := h2.Cancel(); err != nil {
		log.Fatal(err)
	}
	if _, err := h2.Wait(time.Minute); err != nil {
		fmt.Printf("second traversal aborted as requested: %v\n", err)
	} else {
		fmt.Println("second traversal finished before the cancel arrived")
	}
}
