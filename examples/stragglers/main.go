// Straggler resilience (§VII-C): emulate transient external interference —
// fixed delays injected into individual vertex accesses on selected servers
// at selected traversal steps — and compare how the synchronous and
// asynchronous engines absorb it. The synchronous engine stalls a full
// barrier behind each straggler; GraphTrek keeps making progress elsewhere
// and lets the merged queue help the straggling server catch up.
package main

import (
	"fmt"
	"log"
	"time"

	"graphtrek"
	"graphtrek/internal/gen"
)

func main() {
	const (
		servers = 16
		steps   = 8
	)
	// One straggler per chosen step (1, 3, 7 as in the paper), placed
	// round-robin across three selected servers; each delays 100 vertex
	// accesses by 5 ms.
	mkPlan := func() *graphtrek.StragglerPlan {
		return graphtrek.PaperStragglers(
			[]int{2, 7, 12}, []int{1, 3, 7}, 5*time.Millisecond, 100)
	}

	run := func(mode graphtrek.Mode, plan *graphtrek.StragglerPlan) time.Duration {
		c, err := graphtrek.NewCluster(graphtrek.Options{
			Servers:     servers,
			DiskService: 100 * time.Microsecond,
			Stragglers:  plan,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		if err := c.Load(func(sink gen.Sink) error {
			_, err := gen.RMAT(gen.RMAT1(12, 8, 1), sink)
			return err
		}); err != nil {
			log.Fatal(err)
		}
		q := graphtrek.V(1)
		for i := 0; i < steps; i++ {
			q = q.E("link")
		}
		start := time.Now()
		if _, err := c.Run(q, mode); err != nil {
			log.Fatal(err)
		}
		return time.Since(start)
	}

	fmt.Printf("8-step RMAT traversal on %d servers, 3 injected stragglers (5ms x 100 accesses)\n\n", servers)
	for _, mode := range []graphtrek.Mode{graphtrek.ModeSync, graphtrek.ModeGraphTrek} {
		clean := run(mode, nil)
		perturbed := run(mode, mkPlan())
		fmt.Printf("%-12s clean %8v   with stragglers %8v   slowdown %.2fx\n",
			mode, clean.Round(time.Millisecond), perturbed.Round(time.Millisecond),
			float64(perturbed)/float64(clean))
	}
	fmt.Println("\nthe synchronous engine pays each straggler at a barrier; the asynchronous")
	fmt.Println("engine overlaps other servers' work with the delay (paper Fig 11: ~2x gap)")
}
