// Quickstart: build a tiny HPC metadata graph (Fig 1 of the paper), run the
// data-auditing traversal of §III-A1 under the GraphTrek engine, and print
// the files it finds.
package main

import (
	"fmt"
	"log"

	"graphtrek"
)

func main() {
	// A four-server simulated cluster; partitions live in memory.
	c, err := graphtrek.NewCluster(graphtrek.Options{Servers: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// The metadata graph of the paper's Fig 1: users run executions,
	// executions read and write files.
	const (
		sam    = graphtrek.VertexID(1)
		john   = graphtrek.VertexID(2)
		job1   = graphtrek.VertexID(10)
		job2   = graphtrek.VertexID(11)
		dset   = graphtrek.VertexID(20)
		app    = graphtrek.VertexID(21)
		outTxt = graphtrek.VertexID(22)
	)
	vertices := []graphtrek.Vertex{
		{ID: sam, Label: "User", Props: graphtrek.Props{"name": graphtrek.String("sam"), "group": graphtrek.String("cgroup")}},
		{ID: john, Label: "User", Props: graphtrek.Props{"name": graphtrek.String("john"), "group": graphtrek.String("admin")}},
		{ID: job1, Label: "Execution", Props: graphtrek.Props{"name": graphtrek.String("job201405"), "params": graphtrek.String("-n 1024")}},
		{ID: job2, Label: "Execution", Props: graphtrek.Props{"name": graphtrek.String("job201406")}},
		{ID: dset, Label: "File", Props: graphtrek.Props{"name": graphtrek.String("dset-1"), "type": graphtrek.String("data")}},
		{ID: app, Label: "File", Props: graphtrek.Props{"name": graphtrek.String("app-01"), "type": graphtrek.String("exe")}},
		{ID: outTxt, Label: "File", Props: graphtrek.Props{"name": graphtrek.String("results.txt"), "type": graphtrek.String("text")}},
	}
	edges := []graphtrek.Edge{
		{Src: sam, Dst: job1, Label: "run", Props: graphtrek.Props{"start_ts": graphtrek.Int(140)}},
		{Src: john, Dst: job2, Label: "run", Props: graphtrek.Props{"start_ts": graphtrek.Int(150)}},
		{Src: job1, Dst: app, Label: "exe"},
		{Src: job1, Dst: dset, Label: "read"},
		{Src: job1, Dst: outTxt, Label: "read"},
		{Src: job2, Dst: outTxt, Label: "write", Props: graphtrek.Props{"writeSize": graphtrek.Int(7 << 20)}},
	}
	for _, v := range vertices {
		if err := c.AddVertex(v); err != nil {
			log.Fatal(err)
		}
	}
	for _, e := range edges {
		if err := c.AddEdge(e); err != nil {
			log.Fatal(err)
		}
	}

	// §III-A1: find all text files read by sam within a time frame —
	// GTravel.v(sam).e("run").ea("start_ts", RANGE, [100, 200])
	//         .e("read").va("type", EQ, "text").rtn()
	q := graphtrek.V(sam).
		E("run").Ea("start_ts", graphtrek.RANGE, 100, 200).
		E("read").Va("type", graphtrek.EQ, "text").Rtn()

	files, err := c.Run(q, graphtrek.ModeGraphTrek)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("text files read by sam in [100,200]: %v\n", files)
	if len(files) != 1 || files[0] != outTxt {
		log.Fatalf("expected [%v], got %v", outTxt, files)
	}

	// The same traversal under the synchronous baseline returns the same
	// set — the engines differ in execution strategy, not semantics.
	filesSync, err := c.Run(graphtrek.V(sam).
		E("run").Ea("start_ts", graphtrek.RANGE, 100, 200).
		E("read").Va("type", graphtrek.EQ, "text").Rtn(),
		graphtrek.ModeSync)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same query, Sync-GT engine:             %v\n", filesSync)
}
