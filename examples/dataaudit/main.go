// Data auditing (§II-B1, §VII-D): generate a synthetic HPC rich-metadata
// graph with the paper's Darshan-graph schema and ratios, then run the
// suspicious-user audit query from Table III — list all files written by
// executions whose input files were written by the suspect's executions —
// under every engine, timing each.
package main

import (
	"fmt"
	"log"
	"time"

	"graphtrek"
	"graphtrek/internal/gen"
)

func main() {
	c, err := graphtrek.NewCluster(graphtrek.Options{
		Servers:     8,
		DiskService: 200 * time.Microsecond, // simulated cold-read latency
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// A ~20k-vertex metadata graph with Table II's entity ratios:
	// users -run-> jobs -hasExecutions-> executions -read/write-> files.
	var stats gen.MetaStats
	err = c.Load(func(sink gen.Sink) error {
		var err error
		stats, err = gen.Metadata(gen.ScaledMeta(20000, 7), sink)
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded metadata graph: %s\n", stats)

	suspect := stats.UserID(1)
	fmt.Printf("auditing user %v\n\n", suspect)

	// The Table III query:
	//   GTravel.v(suspectUser).e('run').ea('ts', RANGE, [ts, te])
	//          .e('hasExecutions').e('write').e('readBy').e('write').rtn()
	build := func() *graphtrek.Travel {
		return graphtrek.V(suspect).
			E("run").Ea("ts", graphtrek.RANGE, 0, 1<<20).
			E("hasExecutions").
			E("write").
			E("readBy").
			E("write").Rtn()
	}

	for _, mode := range []graphtrek.Mode{
		graphtrek.ModeSync, graphtrek.ModeAsyncPlain, graphtrek.ModeGraphTrek,
	} {
		c.ResetDisks() // cold start per engine, as in the paper's runs
		start := time.Now()
		files, err := c.Run(build(), mode)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %6d tainted output files in %v\n",
			mode, len(files), time.Since(start).Round(time.Millisecond))
	}

	// Per-server instrumentation, as collected for the paper's Fig 7.
	fmt.Println("\nper-server visit breakdown (all three runs combined):")
	for i, m := range c.ServerMetrics() {
		fmt.Printf("  server %d: received=%d redundant=%d combined=%d realIO=%d\n",
			i, m.Received, m.Redundant, m.Combined, m.RealIO)
	}
}
