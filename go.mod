module graphtrek

go 1.22
