package main

import (
	"strings"
	"testing"

	"graphtrek/internal/core"
	"graphtrek/internal/property"
)

func TestParseHopPlain(t *testing.T) {
	label, filt, err := parseHop("run")
	if err != nil || label != "run" || filt != nil {
		t.Fatalf("got %q %v %v", label, filt, err)
	}
}

func TestParseHopWithRange(t *testing.T) {
	label, filt, err := parseHop("run[ts:100..200]")
	if err != nil {
		t.Fatal(err)
	}
	if label != "run" || filt == nil || filt.key != "ts" || filt.lo != 100 || filt.hi != 200 {
		t.Fatalf("got %q %+v", label, filt)
	}
}

func TestParseHopErrors(t *testing.T) {
	for _, bad := range []string{
		"run[ts:100..200", // missing ]
		"run[ts=1..2]",    // missing :
		"run[ts:1-2]",     // missing ..
		"run[ts:a..2]",    // non-numeric lo
		"run[ts:1..b]",    // non-numeric hi
	} {
		if _, _, err := parseHop(bad); err == nil {
			t.Errorf("%q: expected parse error", bad)
		}
	}
}

func TestBuildTravelFromIDs(t *testing.T) {
	tr, err := buildTravel("1, 2,3", "", "run,read[w:0..5]", "type=text", 2)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := tr.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumSteps() != 3 {
		t.Fatalf("steps = %d", plan.NumSteps())
	}
	if len(plan.Steps[0].SourceIDs) != 3 {
		t.Errorf("sources = %v", plan.Steps[0].SourceIDs)
	}
	if plan.Steps[2].EdgeLabel != "read" || len(plan.Steps[2].EdgeFilters) != 1 {
		t.Errorf("step 2 = %+v", plan.Steps[2])
	}
	if !plan.Steps[2].Rtn {
		t.Error("rtn step 2 not marked")
	}
	if len(plan.Steps[2].VertexFilters) != 1 || plan.Steps[2].VertexFilters[0].Op != property.EQ {
		t.Errorf("va filter = %+v", plan.Steps[2].VertexFilters)
	}
}

func TestBuildTravelFromLabel(t *testing.T) {
	tr, err := buildTravel("", "User", "run", "", -1)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := tr.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Steps[0].SourceLabel != "User" {
		t.Errorf("source label = %q", plan.Steps[0].SourceLabel)
	}
}

func TestBuildTravelRtnZeroMarksSource(t *testing.T) {
	tr, err := buildTravel("5", "", "run", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := tr.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Steps[0].Rtn {
		t.Error("rtn 0 should mark the source step")
	}
}

func TestBuildTravelErrors(t *testing.T) {
	if _, err := buildTravel("x", "", "", "", -1); err == nil || !strings.Contains(err.Error(), "bad -v") {
		t.Errorf("bad id: %v", err)
	}
	if _, err := buildTravel("1", "", "run", "typetext", -1); err == nil {
		t.Error("bad -va should error")
	}
	if _, err := buildTravel("1", "", "run[bad]", "", -1); err == nil {
		t.Error("bad hop should error")
	}
}

func TestRunValidation(t *testing.T) {
	if err := run(0, 1, 0, "", "", "", "", "", "", -1, "graphtrek", 0, 0, false, false, 3, false, "", 256, false, false); err == nil {
		t.Error("missing addrs should error")
	}
	if err := run(3, 1, 0, ":1", "", "", "", "", "", -1, "nope", 0, 0, false, false, 3, false, "", 256, false, false); err == nil {
		t.Error("unknown mode should error")
	}
	if err := run(0, 2, 0, ":1,:2,:3", "", "", "", "", "", -1, "graphtrek", 0, 0, false, false, 3, false, "", 256, false, false); err == nil {
		t.Error("self inside backend range should error")
	}
	if err := run(3, 1, 0, ":1,:2", "1", "a", "", "", "", -1, "graphtrek", 0, 0, false, false, 3, false, "", 256, false, false); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("-v with -names should error, got %v", err)
	}
}

func TestParseMutation(t *testing.T) {
	m, ok, err := parseMutation("v report.txt File type=text size=42")
	if err != nil || !ok {
		t.Fatalf("vertex line: ok=%v err=%v", ok, err)
	}
	if m.Op != core.NamedAddVertex || m.Name != "report.txt" || m.Label != "File" {
		t.Fatalf("vertex parsed as %+v", m)
	}
	if m.Props["type"] != property.String("text") || m.Props["size"] != property.Int(42) {
		t.Fatalf("props parsed as %+v (int-looking values must become Int)", m.Props)
	}

	m, ok, err = parseMutation("e alice run report.txt ts=7")
	if err != nil || !ok || m.Op != core.NamedAddEdge || m.Src != "alice" || m.Label != "run" || m.Dst != "report.txt" {
		t.Fatalf("edge line: ok=%v err=%v m=%+v", ok, err, m)
	}
	m, ok, err = parseMutation("dv report.txt")
	if err != nil || !ok || m.Op != core.NamedDelVertex || m.Name != "report.txt" {
		t.Fatalf("del-vertex line: ok=%v err=%v m=%+v", ok, err, m)
	}
	m, ok, err = parseMutation("de alice run report.txt")
	if err != nil || !ok || m.Op != core.NamedDelEdge || m.Src != "alice" || m.Dst != "report.txt" {
		t.Fatalf("del-edge line: ok=%v err=%v m=%+v", ok, err, m)
	}

	for _, blank := range []string{"", "   ", "# a comment", "v x File # trailing comment ignored"} {
		if _, _, err := parseMutation(blank); err != nil {
			t.Errorf("%q should not error: %v", blank, err)
		}
	}
	if _, ok, _ := parseMutation("# only a comment"); ok {
		t.Error("comment-only line should yield no mutation")
	}

	for _, bad := range []string{"v", "v onlyname", "e a run", "dv", "de a run", "zz what", "v x File novalue"} {
		if _, _, err := parseMutation(bad); err == nil {
			t.Errorf("%q should error", bad)
		}
	}
}
