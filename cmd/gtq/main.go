// Command gtq submits a GTravel traversal to a running GraphTrek cluster
// over TCP and prints the returned vertices.
//
// The query is assembled from flags, mirroring the GTravel call chain:
//
//	gtq -self 3 -servers 3 -addrs :7000,:7001,:7002,:7003 \
//	    -v 42 -e "run[ts:100..200],read" -va "type=text" -rtn 2 -mode graphtrek
//
// -e takes comma-separated edge labels, each optionally carrying one
// RANGE filter in brackets (key:lo..hi). -va applies one EQ vertex filter
// (key=value) to the final step. -rtn marks a step index for return.
//
// Against a replicated cluster, pass -replicas to match the servers'
// -replicas flag; that enables the quorum write path, which -load uses to
// stream a name-addressed mutation script (one op per line, see loadFile)
// into the cluster in batches.
//
// Two introspection modes skip the traversal entirely: -events pulls every
// backend's control-plane journal and prints the merged, time-sorted
// timeline; -status pulls every backend's live status document and prints
// a per-partition replication table (epoch, role, applied/acked/commit
// watermarks, lag, handoffs, feed cursors).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"graphtrek/internal/core"
	"graphtrek/internal/events"
	"graphtrek/internal/model"
	"graphtrek/internal/partition"
	"graphtrek/internal/property"
	"graphtrek/internal/query"
	"graphtrek/internal/route"
	"graphtrek/internal/rpc"
	"graphtrek/internal/status"
	"graphtrek/internal/trace"
)

var modes = map[string]core.Mode{
	"sync":      core.ModeSync,
	"async":     core.ModeAsyncPlain,
	"graphtrek": core.ModeGraphTrek,
	"client":    core.ModeClientSide,
}

func main() {
	self := flag.Int("self", -1, "this client's node id (a slot after the backends)")
	servers := flag.Int("servers", 1, "number of backend servers")
	addrs := flag.String("addrs", "", "comma-separated node addresses")
	vIDs := flag.String("v", "", "comma-separated source vertex ids")
	vNames := flag.String("names", "", "comma-separated source vertex names, resolved through the interning dictionary (instead of -v)")
	vLabel := flag.String("vlabel", "", "source vertex label (instead of -v)")
	eSpec := flag.String("e", "", "comma-separated edge labels, each optionally label[key:lo..hi]")
	vaSpec := flag.String("va", "", "final-step vertex EQ filter, key=value")
	rtnStep := flag.Int("rtn", -1, "step index to mark with rtn() (-1: none)")
	modeName := flag.String("mode", "graphtrek", "engine: sync | async | graphtrek | client")
	timeout := flag.Duration("timeout", 2*time.Minute, "client wait timeout per attempt")
	retries := flag.Int("retries", 0, "traversal restarts after a failed attempt (rotates coordinator)")
	profile := flag.Bool("profile", false, "after the traversal, fetch execution traces and print a per-step cost table (server-side modes only)")
	critPath := flag.Bool("critical-path", false, "after the traversal, assemble the causal trace DAG and print the slowest hop chains (server-side modes only)")
	topK := flag.Int("top", 3, "with -critical-path, how many chains to print")
	resolve := flag.Bool("resolve", false, "materialize result ids back to their interned names")
	replicas := flag.Int("replicas", 0, "replicas per partition; must match graphtrek-server -replicas (0: unreplicated cluster, writes disabled)")
	load := flag.String("load", "", "bulk-load a mutation script file through the quorum write path instead of running a traversal (requires -replicas)")
	batch := flag.Int("batch", 256, "with -load, mutations per write round")
	showEvents := flag.Bool("events", false, "pull every backend's control-plane event journal and print the merged timeline instead of running a traversal")
	showStatus := flag.Bool("status", false, "pull every backend's status document and print the replication status table instead of running a traversal")
	flag.Parse()

	if err := run(*self, *servers, *replicas, *addrs, *vIDs, *vNames, *vLabel, *eSpec, *vaSpec, *rtnStep, *modeName, *timeout, *retries, *profile, *critPath, *topK, *resolve, *load, *batch, *showEvents, *showStatus); err != nil {
		fmt.Fprintln(os.Stderr, "gtq:", err)
		os.Exit(1)
	}
}

func run(self, servers, replicas int, addrs, vIDs, vNames, vLabel, eSpec, vaSpec string, rtnStep int, modeName string, timeout time.Duration, retries int, profile, critPath bool, topK int, resolve bool, load string, batch int, showEvents, showStatus bool) error {
	mode, ok := modes[modeName]
	if !ok {
		return fmt.Errorf("unknown -mode %q", modeName)
	}
	if addrs == "" || self < servers {
		return fmt.Errorf("need -addrs and a -self slot after the %d backends", servers)
	}
	if vIDs != "" && vNames != "" {
		return fmt.Errorf("-v and -names are mutually exclusive")
	}
	// A replicated cluster needs the route view (write path, feed); the
	// plain hash partitioner addresses a single-copy cluster read-only.
	var part partition.Partitioner = partition.NewHash(servers)
	if replicas > 0 {
		part = route.NewView(route.Identity(servers, replicas))
	}
	client := core.NewClient(part)
	tcp, err := rpc.NewTCP(self, strings.Split(addrs, ","), client.Handle)
	if err != nil {
		return err
	}
	defer tcp.Close()
	client.Bind(tcp)

	if load != "" {
		return loadFile(client, load, batch, timeout)
	}
	if showEvents || showStatus {
		if showEvents {
			evs, err := client.ClusterEvents(timeout)
			if err != nil {
				return err
			}
			printEvents(evs)
		}
		if showStatus {
			sts, err := client.ClusterStatus(timeout)
			if err != nil {
				return err
			}
			printStatus(sts)
		}
		return nil
	}
	if vNames != "" {
		// Resolve the source names to interned ids at the client boundary;
		// the traversal itself runs purely on integer ids.
		names := strings.Split(vNames, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
		ids, err := client.ResolveNames(names, core.WriteOptions{Timeout: timeout})
		if err != nil {
			return fmt.Errorf("resolve sources: %w", err)
		}
		var parts []string
		for i, id := range ids {
			if id == 0 {
				return fmt.Errorf("source name %q was never interned", names[i])
			}
			parts = append(parts, strconv.FormatUint(uint64(id), 10))
		}
		vIDs = strings.Join(parts, ",")
	}
	tr, err := buildTravel(vIDs, vLabel, eSpec, vaSpec, rtnStep)
	if err != nil {
		return err
	}
	plan, err := tr.Compile()
	if err != nil {
		return err
	}
	// namer materializes result ids back to names when -resolve is set.
	var namer func([]model.VertexID) []string
	if resolve {
		namer = func(ids []model.VertexID) []string {
			names, err := client.NamesOf(ids, core.WriteOptions{Timeout: timeout})
			if err != nil {
				fmt.Fprintln(os.Stderr, "gtq: resolve results:", err)
				return nil
			}
			return names
		}
	}

	fmt.Printf("gtq: %s (mode %s)\n", plan, mode)
	opts := core.SubmitOptions{Mode: mode, Coordinator: -1, Timeout: timeout, Retries: retries}
	start := time.Now()
	if !profile && !critPath {
		res, err := client.SubmitPlan(plan, opts)
		if err != nil {
			return err
		}
		printResults(res, start, namer)
		return nil
	}
	// Profiling and DAG assembly need the traversal handle to address the
	// trace queries, so run a single async attempt (retries would discard
	// the profiled id).
	if mode == core.ModeClientSide {
		return fmt.Errorf("-profile/-critical-path require a server-side mode (the client mode has no per-execution traces to fetch)")
	}
	h, err := client.SubmitPlanAsync(plan, opts)
	if err != nil {
		return err
	}
	res, err := h.Wait(timeout)
	if err != nil {
		return err
	}
	printResults(res, start, namer)
	if profile {
		stats, err := h.Profile(0)
		if err != nil {
			return fmt.Errorf("profile: %w", err)
		}
		printProfile(stats)
	}
	if critPath {
		dag, err := h.FetchDAG(0)
		if err != nil {
			return fmt.Errorf("critical-path: %w", err)
		}
		printCriticalPath(dag, topK)
	}
	return nil
}

func printResults(res []model.VertexID, start time.Time, namer func([]model.VertexID) []string) {
	fmt.Printf("gtq: %d vertices in %v\n", len(res), time.Since(start).Round(time.Millisecond))
	var names []string
	if namer != nil {
		names = namer(res)
	}
	for i, v := range res {
		if i < len(names) && names[i] != "" {
			fmt.Printf("%s\t%s\n", v, names[i])
			continue
		}
		fmt.Println(v)
	}
}

// printEvents renders the merged cluster timeline, one line per event,
// oldest first. Part/peer/epoch columns print "-" when the event type has
// no such subject.
func printEvents(evs []events.Event) {
	if len(evs) == 0 {
		fmt.Println("gtq: no control-plane events recorded (quiet cluster, or journals disabled)")
		return
	}
	fmt.Printf("gtq: %d control-plane events, oldest first\n", len(evs))
	fmt.Println("time             srv   seq  type            part  peer  epoch  detail")
	opt := func(v int) string {
		if v < 0 {
			return "-"
		}
		return strconv.Itoa(v)
	}
	for _, e := range evs {
		epoch := "-"
		if e.Epoch > 0 {
			epoch = strconv.FormatUint(e.Epoch, 10)
		}
		detail := e.Detail
		if e.Count > 1 {
			detail = fmt.Sprintf("x%d %s", e.Count, detail)
		}
		fmt.Printf("%s  %3d  %4d  %-14s  %4s  %4s  %5s  %s\n",
			time.Unix(0, e.TimeUnixNano).Format("15:04:05.000000"),
			e.Server, e.Seq, e.Type, opt(e.Part), opt(e.Peer), epoch, detail)
	}
}

// printStatus renders each backend's status document: a one-line server
// summary (readiness, executor queue, cache), then a per-partition
// replication table for servers that hold partition roles.
func printStatus(sts []status.Server) {
	for _, st := range sts {
		ready := "ready"
		if !st.Ready {
			ready = "NOT READY: " + strings.Join(st.NotReadyReasons, "; ")
		}
		fmt.Printf("gtq: server %d: %s  queue %d (high-water %d)  cache v %d/%d a %d/%d hit/miss\n",
			st.Server, ready, st.QueueLen, st.QueueHighWater,
			st.Cache.VtxHits, st.Cache.VtxMisses, st.Cache.AdjHits, st.Cache.AdjMisses)
		if len(st.Partitions) == 0 {
			continue
		}
		fmt.Println("  part  epoch  role      primary  followers     applied    acked   commit  lag(n)  lag(B)   lag-age  handoffs  feed-subs")
		for _, p := range st.Partitions {
			var fol []string
			for _, f := range p.Followers {
				fol = append(fol, strconv.Itoa(f))
			}
			followers := strings.Join(fol, ",")
			if followers == "" {
				followers = "-"
			}
			role := p.Role
			if p.Joining {
				role += "+join"
			}
			var subs []string
			for _, fs := range p.FeedSubscribers {
				subs = append(subs, fmt.Sprintf("%d@%d", fs.Peer, fs.Cursor))
			}
			feed := strings.Join(subs, ",")
			if feed == "" {
				feed = "-"
			}
			fmt.Printf("  %4d  %5d  %-8s  %7d  %-9s  %8d  %7d  %7d  %6d  %6d  %8v  %8d  %s\n",
				p.Part, p.Epoch, role, p.Primary, followers,
				p.AppliedSeq, p.AckedSeq, p.CommitSeq, p.LagEntries, p.LagBytes,
				time.Duration(p.LagAgeNs).Round(time.Microsecond), p.HandoffsInFlight, feed)
		}
	}
}

// printProfile renders the per-step cost table: one row per traversal step
// (servers merged), then the per-(step, server) breakdown.
func printProfile(stats []trace.StepStat) {
	if len(stats) == 0 {
		fmt.Println("gtq: no trace spans buffered (tracing disabled, or spans already evicted)")
		return
	}
	const header = "step  srv  execs  frontier  redundant  combined  real  max-wait      wall          errs"
	row := func(st trace.StepStat) {
		srv := "all"
		if st.Server >= 0 {
			srv = fmt.Sprintf("%d", st.Server)
		}
		fmt.Printf("%4d  %3s  %5d  %8d  %9d  %8d  %4d  %-12v  %-12v  %d\n",
			st.Step, srv, st.Execs, st.Frontier, st.Redundant, st.Combined, st.Real,
			time.Duration(st.MaxQueueWaitNs).Round(time.Microsecond),
			time.Duration(st.WallNs).Round(time.Microsecond), st.Errs)
	}
	fmt.Println("gtq: per-step profile (servers merged)")
	fmt.Println(header)
	for _, st := range trace.MergeSteps(stats) {
		row(st)
	}
	fmt.Println("gtq: per-step profile by server")
	fmt.Println(header)
	for _, st := range stats {
		row(st)
	}
}

// printCriticalPath renders the assembled DAG's ledger cross-check and the
// top-K slowest root→leaf chains with per-hop attribution: where each
// chain's time went — queued behind other work, computing, or in the
// network/batching gap after the parent dispatched.
func printCriticalPath(dag *trace.DAG, topK int) {
	if len(dag.Nodes) == 0 {
		fmt.Println("gtq: no trace spans buffered (tracing disabled, or spans already evicted)")
		return
	}
	status := "incomplete"
	if dag.Complete() {
		status = "complete"
	}
	fmt.Printf("gtq: causal DAG for travel %d: %d execs, %d roots, %d orphans, %d duplicates (%s)\n",
		dag.Travel, len(dag.Nodes), len(dag.Roots), len(dag.Orphans), len(dag.Duplicates), status)
	if dag.Summary != nil {
		fmt.Printf("gtq: ledger created %d, ended %d, elapsed %v\n",
			dag.Summary.Created, dag.Summary.Ended, time.Duration(dag.Summary.ElapsedNs).Round(time.Microsecond))
	}
	if dag.SpansDropped > 0 {
		fmt.Printf("gtq: warning: %d spans evicted from trace rings — orphans may be ring churn\n", dag.SpansDropped)
	}
	chains := dag.TopChains(topK)
	for i, ch := range chains {
		fmt.Printf("gtq: chain %d: %v over %d hops (root %d -> leaf %d)\n",
			i+1, time.Duration(ch.DurationNs).Round(time.Microsecond), len(ch.Hops), ch.Root, ch.Leaf)
		fmt.Println("  step  srv        queue      compute          gap  exec")
		for _, h := range ch.Hops {
			fmt.Printf("  %4d  %3d  %11v  %11v  %11v  %d\n",
				h.Step, h.Server,
				time.Duration(h.QueueNs).Round(time.Microsecond),
				time.Duration(h.ComputeNs).Round(time.Microsecond),
				time.Duration(h.GapNs).Round(time.Microsecond), h.Exec)
		}
	}
}

// loadFile streams a name-addressed mutation script into the cluster in
// batches over the quorum write path. One op per line, # comments:
//
//	v <name> <label> [key=value ...]     add or update a vertex
//	dv <name>                            delete a vertex (+ out-edges)
//	e <src> <label> <dst> [key=value ...]  add a directed edge
//	de <src> <label> <dst>               delete a directed edge
//
// Integer values intern as ints, everything else as strings.
func loadFile(client *core.Client, path string, batch int, timeout time.Duration) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if batch < 1 {
		batch = 1
	}
	opts := core.WriteOptions{Timeout: timeout}
	var pending []core.NamedMutation
	total := 0
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		if _, err := client.Mutate(pending, opts); err != nil {
			return err
		}
		total += len(pending)
		pending = pending[:0]
		return nil
	}
	start := time.Now()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		m, ok, err := parseMutation(sc.Text())
		if err != nil {
			return fmt.Errorf("%s:%d: %w", path, line, err)
		}
		if !ok {
			continue
		}
		pending = append(pending, m)
		if len(pending) >= batch {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	fmt.Printf("gtq: loaded %d mutations in %v\n", total, time.Since(start).Round(time.Millisecond))
	return nil
}

// parseMutation parses one script line; ok is false for blanks and comments.
func parseMutation(s string) (core.NamedMutation, bool, error) {
	if i := strings.IndexByte(s, '#'); i >= 0 {
		s = s[:i]
	}
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return core.NamedMutation{}, false, nil
	}
	props := func(kvs []string) (property.Map, error) {
		if len(kvs) == 0 {
			return nil, nil
		}
		m := make(property.Map, len(kvs))
		for _, kv := range kvs {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("bad property %q, want key=value", kv)
			}
			if n, err := strconv.ParseInt(v, 10, 64); err == nil {
				m[k] = property.Int(n)
			} else {
				m[k] = property.String(v)
			}
		}
		return m, nil
	}
	switch op, args := fields[0], fields[1:]; op {
	case "v":
		if len(args) < 2 {
			return core.NamedMutation{}, false, fmt.Errorf("bad v line, want v <name> <label> [key=value ...]")
		}
		p, err := props(args[2:])
		if err != nil {
			return core.NamedMutation{}, false, err
		}
		return core.NamedMutation{Op: core.NamedAddVertex, Name: args[0], Label: args[1], Props: p}, true, nil
	case "dv":
		if len(args) != 1 {
			return core.NamedMutation{}, false, fmt.Errorf("bad dv line, want dv <name>")
		}
		return core.NamedMutation{Op: core.NamedDelVertex, Name: args[0]}, true, nil
	case "e":
		if len(args) < 3 {
			return core.NamedMutation{}, false, fmt.Errorf("bad e line, want e <src> <label> <dst> [key=value ...]")
		}
		p, err := props(args[3:])
		if err != nil {
			return core.NamedMutation{}, false, err
		}
		return core.NamedMutation{Op: core.NamedAddEdge, Src: args[0], Label: args[1], Dst: args[2], Props: p}, true, nil
	case "de":
		if len(args) != 3 {
			return core.NamedMutation{}, false, fmt.Errorf("bad de line, want de <src> <label> <dst>")
		}
		return core.NamedMutation{Op: core.NamedDelEdge, Src: args[0], Label: args[1], Dst: args[2]}, true, nil
	default:
		return core.NamedMutation{}, false, fmt.Errorf("unknown op %q (v | dv | e | de)", op)
	}
}

// buildTravel assembles the GTravel chain from the flag values.
func buildTravel(vIDs, vLabel, eSpec, vaSpec string, rtnStep int) (*query.Travel, error) {
	var t *query.Travel
	switch {
	case vIDs != "":
		var ids []model.VertexID
		for _, f := range strings.Split(vIDs, ",") {
			n, err := strconv.ParseUint(strings.TrimSpace(f), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad -v id %q: %w", f, err)
			}
			ids = append(ids, model.VertexID(n))
		}
		t = query.V(ids...)
	case vLabel != "":
		t = query.VLabel(vLabel)
	default:
		t = query.V()
	}
	if rtnStep == 0 {
		t = t.Rtn()
	}
	step := 0
	if eSpec != "" {
		for _, hop := range strings.Split(eSpec, ",") {
			label, filt, err := parseHop(strings.TrimSpace(hop))
			if err != nil {
				return nil, err
			}
			t = t.E(label)
			step++
			if filt != nil {
				t = t.Ea(filt.key, property.RANGE, filt.lo, filt.hi)
			}
			if rtnStep == step {
				t = t.Rtn()
			}
		}
	}
	if vaSpec != "" {
		k, v, ok := strings.Cut(vaSpec, "=")
		if !ok {
			return nil, fmt.Errorf("bad -va %q, want key=value", vaSpec)
		}
		t = t.Va(k, property.EQ, v)
	}
	return t, nil
}

type rangeFilter struct {
	key    string
	lo, hi int
}

// parseHop parses "label" or "label[key:lo..hi]".
func parseHop(hop string) (string, *rangeFilter, error) {
	open := strings.IndexByte(hop, '[')
	if open < 0 {
		return hop, nil, nil
	}
	if !strings.HasSuffix(hop, "]") {
		return "", nil, fmt.Errorf("bad hop %q, want label[key:lo..hi]", hop)
	}
	label := hop[:open]
	body := hop[open+1 : len(hop)-1]
	key, rng, ok := strings.Cut(body, ":")
	if !ok {
		return "", nil, fmt.Errorf("bad hop filter %q, want key:lo..hi", body)
	}
	loS, hiS, ok := strings.Cut(rng, "..")
	if !ok {
		return "", nil, fmt.Errorf("bad hop range %q, want lo..hi", rng)
	}
	lo, err := strconv.Atoi(loS)
	if err != nil {
		return "", nil, err
	}
	hi, err := strconv.Atoi(hiS)
	if err != nil {
		return "", nil, err
	}
	return label, &rangeFilter{key: key, lo: lo, hi: hi}, nil
}
