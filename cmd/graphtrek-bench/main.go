// Command graphtrek-bench regenerates the paper's evaluation tables and
// figures on a simulated cluster.
//
// Usage:
//
//	graphtrek-bench [-exp all|table1|fig7|fig8|fig9|fig10|fig11|table2|table3|ablation|concurrent|partition]
//
// The concurrent experiment sweeps K=1/4/16/64 simultaneous traversals over
// the shared per-server executor and reports per-traversal latency
// percentiles plus queue-depth and queue-wait executor metrics.
//
// The experiment scale is selected with GRAPHTREK_SCALE
// (tiny|small|medium|paper; default small). See EXPERIMENTS.md for
// recorded outputs and the paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"graphtrek/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (or 'all', or 'list')")
	flag.Parse()

	scale := bench.GetScale()
	fmt.Printf("graphtrek-bench: scale=%s (set GRAPHTREK_SCALE=tiny|small|medium|paper)\n\n", scale.Name)

	switch *exp {
	case "list":
		names := make([]string, 0, len(bench.Experiments))
		for n := range bench.Experiments {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Println(strings.Join(names, "\n"))
		return
	case "all":
		if err := bench.RunAll(scale, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "graphtrek-bench:", err)
			os.Exit(1)
		}
	default:
		run, ok := bench.Experiments[*exp]
		if !ok {
			fmt.Fprintf(os.Stderr, "graphtrek-bench: unknown experiment %q (try -exp list)\n", *exp)
			os.Exit(2)
		}
		if err := run(scale, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "graphtrek-bench:", err)
			os.Exit(1)
		}
	}
}
