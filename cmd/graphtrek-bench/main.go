// Command graphtrek-bench regenerates the paper's evaluation tables and
// figures on a simulated cluster.
//
// Usage:
//
//	graphtrek-bench [-exp all|smoke|readpath|table1|fig7|fig8|fig9|fig10|fig11|table2|table3|ablation|concurrent|partition] [-json out.json]
//
// The concurrent experiment sweeps K=1/4/16/64 simultaneous traversals over
// the shared per-server executor and reports per-traversal latency
// percentiles plus queue-depth and queue-wait executor metrics. The smoke
// experiment is the CI gate: every engine on one small workload, with
// engine-equivalence and metrics-invariant checks. The readpath experiment
// measures the storage hot layer: scan-vs-index seed selection (asserting
// an indexed selective seed enumerates O(matches) candidates) and cold-vs-
// warm read-cache hit rates.
//
// -json writes a machine-readable report (BENCH_<exp>.json by convention)
// alongside the human tables and exits nonzero if any recorded check
// failed, which is how CI blocks on an invariant or equivalence violation.
//
// The experiment scale is selected with GRAPHTREK_SCALE
// (tiny|small|medium|paper; default small). See EXPERIMENTS.md for
// recorded outputs and the paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"graphtrek/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (or 'all', or 'list')")
	jsonPath := flag.String("json", "", "write a machine-readable report here (schema v1); exit nonzero if any check failed")
	chromePath := flag.String("chrome", "", "write the smoke experiment's traced traversal as Chrome trace_event JSON here")
	expoPath := flag.String("exposition", "", "write the smoke experiment's scraped /metrics Prometheus exposition here")
	statusPath := flag.String("status", "", "write the smoke experiment's scraped /status JSON document here")
	flag.Parse()
	bench.ChromeOut = *chromePath
	bench.ExpositionOut = *expoPath
	bench.StatusOut = *statusPath

	scale := bench.GetScale()
	fmt.Printf("graphtrek-bench: scale=%s (set GRAPHTREK_SCALE=tiny|small|medium|paper)\n\n", scale.Name)

	var rep *bench.Report
	if *jsonPath != "" {
		rep = bench.NewReport(scale)
	}
	// The report is written even when a runner dies partway: a truncated
	// run still leaves CI an artifact saying where and why.
	writeReport := func() {
		if rep == nil {
			return
		}
		if err := rep.WriteFile(*jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "graphtrek-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("graphtrek-bench: report written to %s\n", *jsonPath)
	}

	switch *exp {
	case "list":
		names := make([]string, 0, len(bench.Experiments))
		for n := range bench.Experiments {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Println(strings.Join(names, "\n"))
		return
	case "all":
		err := bench.RunAll(scale, os.Stdout, rep)
		writeReport()
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphtrek-bench:", err)
			os.Exit(1)
		}
	default:
		run, ok := bench.Experiments[*exp]
		if !ok {
			fmt.Fprintf(os.Stderr, "graphtrek-bench: unknown experiment %q (try -exp list)\n", *exp)
			os.Exit(2)
		}
		sect := rep.Experiment(*exp)
		err := run(scale, os.Stdout, sect)
		sect.SetErr(err)
		writeReport()
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphtrek-bench:", err)
			os.Exit(1)
		}
	}
	if rep.Failed() {
		fmt.Fprintln(os.Stderr, "graphtrek-bench: one or more report checks failed")
		os.Exit(1)
	}
}
