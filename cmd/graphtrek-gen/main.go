// Command graphtrek-gen generates a synthetic property graph and writes it
// into per-server persistent partitions, ready for graphtrek-server.
//
// Usage:
//
//	graphtrek-gen -out /data/graph -servers 4 -kind rmat -scale 14 -deg 8
//	graphtrek-gen -out /data/graph -servers 4 -kind meta -vertices 100000
//
// Partitioning matches the engine's edge-cut hash partitioner, so server i
// can open /data/graph/server-0i directly. -replicas must match the
// servers' -replicas flag: each vertex and edge is written to every
// replica of its partition (identity placement), so a freshly booted
// replicated cluster's followers already hold the data a failover would
// need. -replicas 1 writes the single-copy layout.
//
// With -connect, the generator instead streams the graph into a RUNNING
// replicated cluster over TCP through the quorum write path (BulkLoad:
// every partition primary ingests concurrently):
//
//	graphtrek-gen -connect :7000,:7001,:7002,:7003 -self 3 -servers 3 \
//	    -replicas 2 -kind meta -vertices 100000
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"graphtrek/internal/core"
	"graphtrek/internal/gen"
	"graphtrek/internal/gstore"
	"graphtrek/internal/kv"
	"graphtrek/internal/model"
	"graphtrek/internal/route"
	"graphtrek/internal/rpc"
)

func main() {
	out := flag.String("out", "", "output directory (required)")
	servers := flag.Int("servers", 4, "number of backend partitions")
	kind := flag.String("kind", "rmat", "graph kind: rmat | meta | trace")
	scale := flag.Int("scale", 14, "RMAT scale (2^scale vertices)")
	deg := flag.Int("deg", 8, "RMAT average out-degree")
	vertices := flag.Int("vertices", 100000, "metadata graph target vertex count")
	in := flag.String("in", "", "trace file to import (kind=trace)")
	seed := flag.Int64("seed", 1, "generator seed")
	replicas := flag.Int("replicas", 2, "replicas per partition; must match graphtrek-server -replicas (1 = single copy)")
	connect := flag.String("connect", "", "comma-separated node addresses of a running cluster: stream the graph over TCP via the quorum write path instead of writing -out")
	self := flag.Int("self", -1, "with -connect, this loader's node id (a slot after the backends; default servers)")
	batch := flag.Int("batch", 256, "with -connect, mutations per write round")
	timeout := flag.Duration("timeout", 2*time.Minute, "with -connect, per-round write timeout")
	flag.Parse()

	if (*out == "" && *connect == "") || *servers < 1 || *replicas < 1 || *replicas > *servers {
		flag.Usage()
		os.Exit(2)
	}
	var err error
	if *connect != "" {
		err = runConnect(*connect, *self, *servers, *replicas, *kind, *scale, *deg, *vertices, *seed, *in, *batch, *timeout)
	} else {
		err = run(*out, *servers, *replicas, *kind, *scale, *deg, *vertices, *seed, *in)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphtrek-gen:", err)
		os.Exit(1)
	}
}

// partitionName is the per-server directory name under the output root.
func partitionName(i int) string { return fmt.Sprintf("server-%02d", i) }

func run(out string, servers, replicas int, kind string, scale, deg, vertices int, seed int64, in string) error {
	// The identity route table places partition p's primary on server p,
	// exactly where the hash partitioner put it, so -replicas 1 produces
	// the original single-copy layout byte for byte.
	table := route.Identity(servers, replicas)
	stores := make([]*gstore.Store, servers)
	for i := range stores {
		s, err := gstore.Open(filepath.Join(out, partitionName(i)), kv.Options{})
		if err != nil {
			return err
		}
		defer s.Close()
		stores[i] = s
	}
	forReplicas := func(id model.VertexID, put func(*gstore.Store) error) error {
		for _, r := range table.Parts[table.Partition(id)].Replicas() {
			if err := put(stores[r]); err != nil {
				return err
			}
		}
		return nil
	}
	sink := gen.Funcs{
		Vertex: func(v model.Vertex) error {
			return forReplicas(v.ID, func(s *gstore.Store) error { return s.PutVertex(v) })
		},
		Edge: func(e model.Edge) error {
			return forReplicas(e.Src, func(s *gstore.Store) error { return s.PutEdge(e) })
		},
	}
	summary, err := generate(kind, scale, deg, vertices, seed, in, sink)
	if err != nil {
		return err
	}
	fmt.Printf("%s across %d partitions\n", summary, servers)
	for i, s := range stores {
		if err := s.Flush(); err != nil {
			return fmt.Errorf("flush partition %d: %w", i, err)
		}
	}
	return nil
}

// generate runs the selected generator into sink and returns a summary line.
func generate(kind string, scale, deg, vertices int, seed int64, in string, sink gen.Funcs) (string, error) {
	switch kind {
	case "rmat":
		stats, err := gen.RMAT(gen.RMAT1(scale, deg, seed), sink)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("generated RMAT-1: %d vertices, %d edge draws", stats.Vertices, stats.EdgesDraw), nil
	case "meta":
		stats, err := gen.Metadata(gen.ScaledMeta(vertices, seed), sink)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("generated metadata graph: %s", stats), nil
	case "trace":
		if in == "" {
			return "", fmt.Errorf("-kind trace requires -in <trace file>")
		}
		f, err := os.Open(in)
		if err != nil {
			return "", err
		}
		defer f.Close()
		stats, err := gen.ImportTrace(f, sink)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("imported trace %s: %s", in, stats), nil
	default:
		return "", fmt.Errorf("unknown -kind %q (rmat | meta | trace)", kind)
	}
}

// runConnect streams the generated graph into a running replicated cluster
// through the quorum write path. The whole graph is materialized as a
// mutation list first (generators are cheap relative to network ingest),
// then BulkLoad splits it by partition and loads every primary at once.
func runConnect(connect string, self, servers, replicas int, kind string, scale, deg, vertices int, seed int64, in string, batch int, timeout time.Duration) error {
	if self < 0 {
		self = servers
	}
	if self < servers {
		return fmt.Errorf("-self %d collides with a backend slot (need >= %d)", self, servers)
	}
	var muts []gstore.Mutation
	sink := gen.Funcs{
		Vertex: func(v model.Vertex) error {
			muts = append(muts, gstore.Mutation{Op: gstore.OpPutVertex, Vertex: v})
			return nil
		},
		Edge: func(e model.Edge) error {
			muts = append(muts, gstore.Mutation{Op: gstore.OpPutEdge, Edge: e})
			return nil
		},
	}
	summary, err := generate(kind, scale, deg, vertices, seed, in, sink)
	if err != nil {
		return err
	}
	client := core.NewClient(route.NewView(route.Identity(servers, replicas)))
	tcp, err := rpc.NewTCP(self, strings.Split(connect, ","), client.Handle)
	if err != nil {
		return err
	}
	defer tcp.Close()
	client.Bind(tcp)
	start := time.Now()
	if err := client.BulkLoad(muts, core.BulkOptions{
		MaxBatch: batch,
		Write:    core.WriteOptions{Timeout: timeout},
	}); err != nil {
		return err
	}
	fmt.Printf("%s; loaded %d mutations over %d servers in %v\n",
		summary, len(muts), servers, time.Since(start).Round(time.Millisecond))
	return nil
}
