// Command graphtrek-gen generates a synthetic property graph and writes it
// into per-server persistent partitions, ready for graphtrek-server.
//
// Usage:
//
//	graphtrek-gen -out /data/graph -servers 4 -kind rmat -scale 14 -deg 8
//	graphtrek-gen -out /data/graph -servers 4 -kind meta -vertices 100000
//
// Partitioning matches the engine's edge-cut hash partitioner, so server i
// can open /data/graph/server-0i directly. -replicas must match the
// servers' -replicas flag: each vertex and edge is written to every
// replica of its partition (identity placement), so a freshly booted
// replicated cluster's followers already hold the data a failover would
// need. -replicas 1 writes the single-copy layout.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"graphtrek/internal/gen"
	"graphtrek/internal/gstore"
	"graphtrek/internal/kv"
	"graphtrek/internal/model"
	"graphtrek/internal/route"
)

func main() {
	out := flag.String("out", "", "output directory (required)")
	servers := flag.Int("servers", 4, "number of backend partitions")
	kind := flag.String("kind", "rmat", "graph kind: rmat | meta | trace")
	scale := flag.Int("scale", 14, "RMAT scale (2^scale vertices)")
	deg := flag.Int("deg", 8, "RMAT average out-degree")
	vertices := flag.Int("vertices", 100000, "metadata graph target vertex count")
	in := flag.String("in", "", "trace file to import (kind=trace)")
	seed := flag.Int64("seed", 1, "generator seed")
	replicas := flag.Int("replicas", 2, "replicas per partition; must match graphtrek-server -replicas (1 = single copy)")
	flag.Parse()

	if *out == "" || *servers < 1 || *replicas < 1 || *replicas > *servers {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*out, *servers, *replicas, *kind, *scale, *deg, *vertices, *seed, *in); err != nil {
		fmt.Fprintln(os.Stderr, "graphtrek-gen:", err)
		os.Exit(1)
	}
}

// partitionName is the per-server directory name under the output root.
func partitionName(i int) string { return fmt.Sprintf("server-%02d", i) }

func run(out string, servers, replicas int, kind string, scale, deg, vertices int, seed int64, in string) error {
	// The identity route table places partition p's primary on server p,
	// exactly where the hash partitioner put it, so -replicas 1 produces
	// the original single-copy layout byte for byte.
	table := route.Identity(servers, replicas)
	stores := make([]*gstore.Store, servers)
	for i := range stores {
		s, err := gstore.Open(filepath.Join(out, partitionName(i)), kv.Options{})
		if err != nil {
			return err
		}
		defer s.Close()
		stores[i] = s
	}
	forReplicas := func(id model.VertexID, put func(*gstore.Store) error) error {
		for _, r := range table.Parts[table.Partition(id)].Replicas() {
			if err := put(stores[r]); err != nil {
				return err
			}
		}
		return nil
	}
	sink := gen.Funcs{
		Vertex: func(v model.Vertex) error {
			return forReplicas(v.ID, func(s *gstore.Store) error { return s.PutVertex(v) })
		},
		Edge: func(e model.Edge) error {
			return forReplicas(e.Src, func(s *gstore.Store) error { return s.PutEdge(e) })
		},
	}
	switch kind {
	case "rmat":
		stats, err := gen.RMAT(gen.RMAT1(scale, deg, seed), sink)
		if err != nil {
			return err
		}
		fmt.Printf("generated RMAT-1: %d vertices, %d edge draws across %d partitions\n",
			stats.Vertices, stats.EdgesDraw, servers)
	case "meta":
		stats, err := gen.Metadata(gen.ScaledMeta(vertices, seed), sink)
		if err != nil {
			return err
		}
		fmt.Printf("generated metadata graph: %s across %d partitions\n", stats, servers)
	case "trace":
		if in == "" {
			return fmt.Errorf("-kind trace requires -in <trace file>")
		}
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		stats, err := gen.ImportTrace(f, sink)
		if err != nil {
			return err
		}
		fmt.Printf("imported trace %s: %s across %d partitions\n", in, stats, servers)
	default:
		return fmt.Errorf("unknown -kind %q (rmat | meta | trace)", kind)
	}
	for i, s := range stores {
		if err := s.Flush(); err != nil {
			return fmt.Errorf("flush partition %d: %w", i, err)
		}
	}
	return nil
}
