package main

import (
	"os"
	"path/filepath"
	"testing"

	"graphtrek/internal/gstore"
	"graphtrek/internal/kv"
	"graphtrek/internal/model"
	"graphtrek/internal/partition"
	"graphtrek/internal/route"
)

func TestGenerateRMATPartitions(t *testing.T) {
	dir := t.TempDir()
	const servers = 3
	if err := run(dir, servers, 1, "rmat", 7, 4, 0, 1, ""); err != nil {
		t.Fatal(err)
	}
	part := partition.NewHash(servers)
	total := 0
	for i := 0; i < servers; i++ {
		s, err := gstore.Open(filepath.Join(dir, partitionName(i)), kv.Options{})
		if err != nil {
			t.Fatal(err)
		}
		count := 0
		err = s.ScanVertices(func(v model.Vertex) bool {
			if part.Owner(v.ID) != i {
				t.Errorf("vertex %v misplaced on partition %d", v.ID, i)
			}
			count++
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Close()
		total += count
	}
	if total != 1<<7 {
		t.Errorf("total vertices = %d, want %d", total, 1<<7)
	}
}

func TestGenerateMetadataPartitions(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 2, 1, "meta", 0, 0, 500, 2, ""); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		s, err := gstore.Open(filepath.Join(dir, partitionName(i)), kv.Options{})
		if err != nil {
			t.Fatal(err)
		}
		users := 0
		s.ScanVerticesByLabel("User", func(model.VertexID) bool { users++; return true })
		s.Close()
		if i == 0 && users == 0 {
			// Users spread by hash; at least one partition must hold some.
			s2, _ := gstore.Open(filepath.Join(dir, partitionName(1)), kv.Options{})
			s2.ScanVerticesByLabel("User", func(model.VertexID) bool { users++; return true })
			s2.Close()
			if users == 0 {
				t.Error("no User vertices in any partition")
			}
		}
	}
}

func TestGenerateFromTrace(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "sample.trace")
	if err := os.WriteFile(trace, []byte(
		"user sam\njob J1 sam 10\nexec E1 J1 m\nread E1 /f1\nwrite E1 /f2 11\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "graph")
	if err := run(out, 2, 1, "trace", 0, 0, 0, 1, trace); err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := 0; i < 2; i++ {
		s, err := gstore.Open(filepath.Join(out, partitionName(i)), kv.Options{})
		if err != nil {
			t.Fatal(err)
		}
		s.ScanVertices(func(model.Vertex) bool { total++; return true })
		s.Close()
	}
	if total != 5 { // sam, J1, E1, /f1, /f2
		t.Errorf("imported %d vertices, want 5", total)
	}
	// Missing -in errors.
	if err := run(filepath.Join(dir, "g2"), 1, 1, "trace", 0, 0, 0, 1, ""); err == nil {
		t.Error("trace without -in should error")
	}
}

func TestGenerateUnknownKind(t *testing.T) {
	if err := run(t.TempDir(), 1, 1, "nope", 4, 2, 10, 1, ""); err == nil {
		t.Error("unknown kind should error")
	}
}

func TestGenerateReplicatedLayout(t *testing.T) {
	dir := t.TempDir()
	const servers, replicas = 3, 2
	if err := run(dir, servers, replicas, "rmat", 7, 4, 0, 1, ""); err != nil {
		t.Fatal(err)
	}
	table := route.Identity(servers, replicas)
	// Every vertex must be present on every replica of its partition, and
	// nowhere else.
	counts := make([]map[model.VertexID]bool, servers)
	for i := 0; i < servers; i++ {
		counts[i] = make(map[model.VertexID]bool)
		s, err := gstore.Open(filepath.Join(dir, partitionName(i)), kv.Options{})
		if err != nil {
			t.Fatal(err)
		}
		err = s.ScanVertices(func(v model.Vertex) bool { counts[i][v.ID] = true; return true })
		s.Close()
		if err != nil {
			t.Fatal(err)
		}
	}
	distinct := make(map[model.VertexID]bool)
	for i := range counts {
		for id := range counts[i] {
			distinct[id] = true
			if !table.Parts[table.Partition(id)].HasReplica(int32(i)) {
				t.Errorf("vertex %v on server %d which does not replicate its partition", id, i)
			}
		}
	}
	for id := range distinct {
		for _, r := range table.Parts[table.Partition(id)].Replicas() {
			if !counts[r][id] {
				t.Errorf("vertex %v missing from replica %d of its partition", id, r)
			}
		}
	}
	if len(distinct) != 1<<7 {
		t.Errorf("distinct vertices = %d, want %d", len(distinct), 1<<7)
	}
}
