// Command graphtrek-server runs one GraphTrek backend server over TCP: the
// traversal engine colocated with one persistent graph partition. The
// cluster membership is a static address list; node ids 0..servers-1 are
// backends and higher slots are clients (gtq).
//
// A three-server deployment on one machine:
//
//	graphtrek-gen   -out /data/g -servers 3 -kind meta -vertices 100000
//	graphtrek-server -id 0 -servers 3 -addrs :7000,:7001,:7002,:7003 -data /data/g/server-00 &
//	graphtrek-server -id 1 -servers 3 -addrs :7000,:7001,:7002,:7003 -data /data/g/server-01 &
//	graphtrek-server -id 2 -servers 3 -addrs :7000,:7001,:7002,:7003 -data /data/g/server-02 &
//	gtq -self 3 -servers 3 -addrs :7000,:7001,:7002,:7003 -vlabel User -e run
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"graphtrek/internal/core"
	"graphtrek/internal/gstore"
	"graphtrek/internal/kv"
	"graphtrek/internal/obs"
	"graphtrek/internal/partition"
	"graphtrek/internal/route"
	"graphtrek/internal/rpc"
	"graphtrek/internal/simio"
)

func main() {
	id := flag.Int("id", 0, "this server's node id")
	servers := flag.Int("servers", 1, "number of backend servers in the cluster")
	addrs := flag.String("addrs", "", "comma-separated node addresses, index = node id (backends first, then client slots)")
	data := flag.String("data", "", "persistent graph partition directory (required)")
	workers := flag.Int("workers", 4, "shared executor pool size: worker goroutines per server, across all concurrent traversals")
	maxQueue := flag.Int("max-queue", 0, "executor admission limit: max buffered requests across all traversals (0 = unbounded)")
	diskService := flag.Duration("disk-service", 0, "simulated per-access disk latency (0 = real storage only)")
	timeout := flag.Duration("travel-timeout", 60*time.Second, "coordinator inactivity watchdog timeout")
	heartbeat := flag.Duration("heartbeat", time.Second, "backend heartbeat interval (0 disables the failure detector)")
	suspectAfter := flag.Duration("suspect-after", 0, "silence before a peer is suspected dead (0 = 3x heartbeat)")
	sendTimeout := flag.Duration("send-timeout", 2*time.Second, "bounded wait on a full peer outbox before failing the send")
	obsAddr := flag.String("obs-addr", "", "observability HTTP listen address serving /metrics, /debug/pprof, /traces, /events, /status and /readyz (empty disables)")
	traceCap := flag.Int("trace-cap", 0, "execution-trace ring capacity (0 = default 8192, negative disables tracing)")
	slowTravel := flag.Duration("slow-travel", 0, "capture the full causal trace DAG of traversals at least this slow (served at /traces/slow; 0 disables)")
	indexKeys := flag.String("index", "", "comma-separated property keys to secondary-index at boot (step-0 filters on them seed via the index)")
	cacheBytes := flag.Int64("cache-bytes", 0, "read-cache budget in bytes for decoded vertices and adjacency lists (0 disables)")
	replicas := flag.Int("replicas", 2, "replicas per partition (primary + followers); 1 disables replication")
	join := flag.String("join", "", "comma-separated partition ids to join via online shard handoff after startup (replicated clusters only)")
	flag.Parse()

	if *data == "" || *addrs == "" {
		flag.Usage()
		os.Exit(2)
	}
	addrList := strings.Split(*addrs, ",")
	if *id < 0 || *id >= *servers || *servers > len(addrList) {
		fmt.Fprintln(os.Stderr, "graphtrek-server: id/servers/addrs mismatch")
		os.Exit(2)
	}

	diskStore, err := gstore.Open(*data, kv.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphtrek-server:", err)
		os.Exit(1)
	}
	var store gstore.Graph = diskStore
	if *cacheBytes > 0 {
		store = gstore.NewCachedGraph(store, *cacheBytes)
	}
	defer store.Close()
	if *indexKeys != "" {
		// Enable explicitly (not via Config.IndexKeys) so a failed backfill
		// is a loud startup error rather than a silent scan fallback.
		for _, key := range strings.Split(*indexKeys, ",") {
			if key = strings.TrimSpace(key); key == "" {
				continue
			}
			if err := store.(gstore.PropertyIndex).EnableIndex(key); err != nil {
				fmt.Fprintln(os.Stderr, "graphtrek-server: -index:", err)
				os.Exit(1)
			}
			fmt.Printf("graphtrek-server: property index enabled on %q\n", key)
		}
	}

	// With -replicas >= 2 the partition map is an epoch-stamped route view
	// (identical to the static hash layout at boot) instead of the bare
	// hash partitioner: quorum writes, epoch-fenced failover and shard
	// handoff activate, and gossip keeps the cluster's views converged.
	var part partition.Partitioner = partition.NewHash(*servers)
	var view *route.View
	if *replicas >= 2 {
		view = route.NewView(route.Identity(*servers, *replicas))
		part = view
	}
	srv := core.NewServer(core.Config{
		ID:                *id,
		Store:             store,
		Part:              part,
		Route:             view,
		ReplicationFactor: *replicas,
		Disk:              simio.NewDisk(*diskService, 1),
		Workers:           *workers,
		MaxQueueDepth:     *maxQueue,
		TravelTimeout:     *timeout,
		HeartbeatInterval: *heartbeat,
		SuspectAfter:      *suspectAfter,
		TraceCap:          *traceCap,
		SlowTravelNs:      int64(*slowTravel),
	})
	tr, err := rpc.NewTCPWithOptions(*id, addrList, srv.Handle, rpc.TCPOptions{
		SendTimeout:   *sendTimeout,
		OnReconnect:   srv.ObserveReconnect,
		OnSendFailure: srv.ObserveSendFailure,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphtrek-server:", err)
		os.Exit(1)
	}
	srv.Bind(tr)
	fmt.Printf("graphtrek-server: node %d/%d listening on %s, partition %s\n",
		*id, *servers, tr.Addr(), *data)
	if *join != "" {
		if view == nil {
			fmt.Fprintln(os.Stderr, "graphtrek-server: -join requires -replicas >= 2")
			os.Exit(2)
		}
		// Let Bind's boot route announcement and its anti-entropy replies
		// land first: a restarted ex-replica boots with a stale table that
		// still lists it as a member, and joining off that table would
		// no-op. One round trip fences and demotes us; a second is slack.
		time.Sleep(time.Second)
		for _, ps := range strings.Split(*join, ",") {
			var p int
			if _, err := fmt.Sscanf(strings.TrimSpace(ps), "%d", &p); err != nil {
				fmt.Fprintln(os.Stderr, "graphtrek-server: -join:", err)
				os.Exit(2)
			}
			if err := srv.JoinPartition(p); err != nil {
				fmt.Fprintln(os.Stderr, "graphtrek-server: -join:", err)
				os.Exit(1)
			}
			fmt.Printf("graphtrek-server: joining partition %d (snapshot + live tail streaming)\n", p)
			deadline := time.Now().Add(30 * time.Second)
			for !view.Assignment(p).HasReplica(int32(*id)) {
				if time.Now().After(deadline) {
					fmt.Fprintf(os.Stderr, "graphtrek-server: -join: partition %d not published as ours after 30s\n", p)
					os.Exit(1)
				}
				time.Sleep(100 * time.Millisecond)
			}
			fmt.Printf("graphtrek-server: joined partition %d\n", p)
		}
	}

	var obsSrv *http.Server
	if *obsAddr != "" {
		obsSrv = obs.ListenAndServe(*obsAddr, func(err error) {
			fmt.Fprintln(os.Stderr, "graphtrek-server: obs endpoint:", err)
		}, srv)
		fmt.Printf("graphtrek-server: observability endpoint on %s (/metrics, /debug/pprof, /traces, /traces/dag, /traces/chrome, /traces/slow, /events, /status, /healthz, /readyz)\n", *obsAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("graphtrek-server: shutting down")
	if obsSrv != nil {
		obsSrv.Close()
	}
	srv.Close()
	tr.Close()
}
