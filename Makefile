# GraphTrek build and verification targets. `make check` is the full gate
# the CI and pre-commit runs use: vet, build, tests, and the race detector.

GO ?= go

.PHONY: all build vet test race stress check fmt bench clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Concurrency stress: many simultaneous traversals multiplexed over the
# shared per-server executor, under the race detector with a short deadline.
stress:
	$(GO) test -race -count=1 -timeout 120s -run 'TestSharedExecutor' ./internal/core

check: vet build test race stress

fmt:
	gofmt -l -w .

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./internal/...

clean:
	$(GO) clean ./...
