# GraphTrek build and verification targets. `make check` is the full gate
# the CI and pre-commit runs use: vet, build, tests, and the race detector.

GO ?= go

.PHONY: all build vet test race check fmt bench clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

check: vet build test race

fmt:
	gofmt -l -w .

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./internal/...

clean:
	$(GO) clean ./...
