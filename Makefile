# GraphTrek build and verification targets. `make check` is the full gate
# the CI and pre-commit runs use: vet, build, tests, the race detector, the
# concurrency stress run and (when reachable) staticcheck.

GO ?= go
STATICCHECK_VERSION ?= 2025.1.1
STATICCHECK := $(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)

.PHONY: all build vet test race stress fuzz-smoke check lint fmt fmtcheck bench benchfull bench-smoke bench-readpath bench-failover bench-fanout bench-readwrite clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Concurrency stress: many simultaneous traversals multiplexed over the
# shared per-server executor, the replication chaos suite (quorum writes,
# primary-kill failover, epoch fencing, shard handoff), and the change-feed
# churn tests, all under the race detector with a short deadline. Stress
# tests opt in by NAME CONVENTION — any `TestStress*` under internal/ is
# picked up automatically, and the target fails loudly if the pattern ever
# matches nothing (the old hand-listed pattern silently drifted as tests
# were added).
stress:
	@out=$$(mktemp); \
	$(GO) test -race -count=1 -timeout 120s -run '^TestStress' -v ./internal/... >$$out 2>&1; status=$$?; \
	n=$$(grep -c '^=== RUN   TestStress' $$out); \
	if [ $$status -ne 0 ]; then cat $$out; rm -f $$out; exit $$status; fi; \
	if [ "$$n" -eq 0 ]; then cat $$out; echo "stress: pattern ^TestStress matched no tests — name-convention drift"; rm -f $$out; exit 1; fi; \
	grep -E '^(ok|---|FAIL)' $$out; rm -f $$out; \
	echo "stress: $$n TestStress* tests passed under -race"

# fuzz-smoke gives each wire/storage codec fuzzer a short randomized budget
# on top of its checked-in seed corpus: frame decoding (v2 columnar), the
# edge-key parser, the mutation-batch codec, and the change-feed record
# codec. Go allows one -fuzz target per invocation, hence the sequence.
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeV2$$' -fuzztime $(FUZZTIME) ./internal/wire
	$(GO) test -run '^$$' -fuzz '^FuzzParseEdgeKey$$' -fuzztime $(FUZZTIME) ./internal/gstore
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeBatch$$' -fuzztime $(FUZZTIME) ./internal/gstore
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeFeedRecords$$' -fuzztime $(FUZZTIME) ./internal/gstore

check: vet build test race stress lint

# Staticcheck is pinned and fetched through the module proxy on demand, so
# nothing is vendored. On an offline machine the probe fails and lint is
# skipped with a warning; under CI=true (as GitHub Actions sets) an
# unreachable staticcheck fails the build instead of silently passing.
lint:
	@if $(STATICCHECK) -version >/dev/null 2>&1; then \
		$(STATICCHECK) ./...; \
	elif [ "$$CI" = "true" ]; then \
		echo "lint: staticcheck unavailable under CI"; exit 1; \
	else \
		echo "lint: staticcheck unavailable (offline?); skipping"; \
	fi

fmt:
	gofmt -l -w .

# fmtcheck fails (listing the offenders) instead of rewriting, for CI.
fmtcheck:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# bench runs every Go benchmark exactly once (-benchtime=1x): a compile-and-
# run smoke pass, not a measurement. Use benchfull for real numbers.
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./internal/...

# benchfull lets the benchmark framework pick iteration counts; expect it to
# take minutes where bench takes seconds.
benchfull:
	$(GO) test -bench=. -run=^$$ ./internal/...

# bench-smoke is the CI benchmark gate: every engine on one tiny workload,
# with engine-equivalence, §VII-A invariant, trace-completeness and
# histogram-exposition checks recorded in the machine-readable report, plus
# a sample Chrome timeline of the traced traversal and dumps of the scraped
# /metrics exposition and /status document for out-of-process validation.
# Exits nonzero if any check fails.
bench-smoke:
	GRAPHTREK_SCALE=tiny $(GO) run ./cmd/graphtrek-bench -exp smoke -json BENCH_smoke.json -chrome travel.chrome.json -exposition metrics.prom -status status.json

# bench-readpath gates the storage read path: scan-vs-index seed selection
# (SeedScanned == matches when indexed) and cold/warm read-cache hit rate.
bench-readpath:
	GRAPHTREK_SCALE=tiny $(GO) run ./cmd/graphtrek-bench -exp readpath -json BENCH_readpath.json

# bench-failover gates the replication subsystem: quorum-acknowledged
# writes, primary-kill promotion latency, zero lost acked writes, traversal
# equivalence across the failover, and online shard handoff.
bench-failover:
	GRAPHTREK_SCALE=tiny $(GO) run ./cmd/graphtrek-bench -exp failover -json BENCH_failover.json

# bench-fanout gates the frontier data path: interned dense ids + packed
# adjacency + the columnar v2 frame must beat the pre-refactor shape (edge
# decode + row-major v1 frames) by >= 3x vertices/sec and >= 2x fewer wire
# bytes per vertex, with the pooled encode path allocating less per batch.
bench-fanout:
	GRAPHTREK_SCALE=tiny $(GO) run ./cmd/graphtrek-bench -exp fanout -json BENCH_fanout.json

# bench-readwrite gates the streaming mutation pipeline under a mixed
# read/write workload: bulk load through the quorum write path, concurrent
# mutators during traversals (zero lost acked writes, bounded p95 traversal
# degradation vs the read-only baseline, §VII-A invariant under churn), and
# change-feed completeness (every committed mutation delivered exactly
# once, in order).
bench-readwrite:
	GRAPHTREK_SCALE=tiny $(GO) run ./cmd/graphtrek-bench -exp readwrite -json BENCH_readwrite.json

clean:
	$(GO) clean ./...
