# GraphTrek build and verification targets. `make check` is the full gate
# the CI and pre-commit runs use: vet, build, tests, the race detector, the
# concurrency stress run and (when reachable) staticcheck.

GO ?= go
STATICCHECK_VERSION ?= 2025.1.1
STATICCHECK := $(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)

.PHONY: all build vet test race stress check lint fmt fmtcheck bench benchfull bench-smoke bench-readpath bench-failover bench-fanout clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Concurrency stress: many simultaneous traversals multiplexed over the
# shared per-server executor, plus the replication chaos suite (quorum
# writes, primary-kill failover, epoch fencing, shard handoff), all under
# the race detector with a short deadline.
stress:
	$(GO) test -race -count=1 -timeout 120s -run 'TestSharedExecutor|TestRepl|TestRetryable' ./internal/core

check: vet build test race stress lint

# Staticcheck is pinned and fetched through the module proxy on demand, so
# nothing is vendored. On an offline machine the probe fails and lint is
# skipped with a warning; under CI=true (as GitHub Actions sets) an
# unreachable staticcheck fails the build instead of silently passing.
lint:
	@if $(STATICCHECK) -version >/dev/null 2>&1; then \
		$(STATICCHECK) ./...; \
	elif [ "$$CI" = "true" ]; then \
		echo "lint: staticcheck unavailable under CI"; exit 1; \
	else \
		echo "lint: staticcheck unavailable (offline?); skipping"; \
	fi

fmt:
	gofmt -l -w .

# fmtcheck fails (listing the offenders) instead of rewriting, for CI.
fmtcheck:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# bench runs every Go benchmark exactly once (-benchtime=1x): a compile-and-
# run smoke pass, not a measurement. Use benchfull for real numbers.
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./internal/...

# benchfull lets the benchmark framework pick iteration counts; expect it to
# take minutes where bench takes seconds.
benchfull:
	$(GO) test -bench=. -run=^$$ ./internal/...

# bench-smoke is the CI benchmark gate: every engine on one tiny workload,
# with engine-equivalence, §VII-A invariant and trace-completeness checks
# recorded in the machine-readable report, plus a sample Chrome timeline of
# the traced traversal. Exits nonzero if any check fails.
bench-smoke:
	GRAPHTREK_SCALE=tiny $(GO) run ./cmd/graphtrek-bench -exp smoke -json BENCH_smoke.json -chrome travel.chrome.json

# bench-readpath gates the storage read path: scan-vs-index seed selection
# (SeedScanned == matches when indexed) and cold/warm read-cache hit rate.
bench-readpath:
	GRAPHTREK_SCALE=tiny $(GO) run ./cmd/graphtrek-bench -exp readpath -json BENCH_readpath.json

# bench-failover gates the replication subsystem: quorum-acknowledged
# writes, primary-kill promotion latency, zero lost acked writes, traversal
# equivalence across the failover, and online shard handoff.
bench-failover:
	GRAPHTREK_SCALE=tiny $(GO) run ./cmd/graphtrek-bench -exp failover -json BENCH_failover.json

# bench-fanout gates the frontier data path: interned dense ids + packed
# adjacency + the columnar v2 frame must beat the pre-refactor shape (edge
# decode + row-major v1 frames) by >= 3x vertices/sec and >= 2x fewer wire
# bytes per vertex, with the pooled encode path allocating less per batch.
bench-fanout:
	GRAPHTREK_SCALE=tiny $(GO) run ./cmd/graphtrek-bench -exp fanout -json BENCH_fanout.json

clean:
	$(GO) clean ./...
